#include "graph/mixing.hpp"

#include <gtest/gtest.h>

#include "bench_suite/benchmarks.hpp"
#include "graph/graph_builder.hpp"

namespace fbmb {
namespace {

Mixture plug(double volume,
             std::map<std::string, double> concentration = {}) {
  Mixture m;
  m.volume = volume;
  m.concentration = std::move(concentration);
  return m;
}

TEST(Mixing, EqualVolumesAverageConcentrations) {
  const Mixture out =
      mix(plug(1.0, {{"protein", 8.0}}), plug(1.0, {{"protein", 0.0}}));
  EXPECT_DOUBLE_EQ(out.volume, 2.0);
  EXPECT_DOUBLE_EQ(out.concentration.at("protein"), 4.0);
}

TEST(Mixing, VolumeWeightedAverage) {
  const Mixture out =
      mix(plug(3.0, {{"dye", 10.0}}), plug(1.0, {{"dye", 2.0}}));
  EXPECT_DOUBLE_EQ(out.volume, 4.0);
  EXPECT_DOUBLE_EQ(out.concentration.at("dye"), (30.0 + 2.0) / 4.0);
}

TEST(Mixing, DisjointSpeciesBothPresent) {
  const Mixture out =
      mix(plug(1.0, {{"a", 2.0}}), plug(1.0, {{"b", 4.0}}));
  EXPECT_DOUBLE_EQ(out.concentration.at("a"), 1.0);
  EXPECT_DOUBLE_EQ(out.concentration.at("b"), 2.0);
}

TEST(Mixing, AmountIsConcentrationTimesVolume) {
  const Mixture m = plug(2.5, {{"x", 4.0}});
  EXPECT_DOUBLE_EQ(m.amount("x"), 10.0);
  EXPECT_DOUBLE_EQ(m.amount("missing"), 0.0);
}

TEST(Mixing, MixConservesAmounts) {
  const Mixture a = plug(1.5, {{"x", 3.0}});
  const Mixture b = plug(2.5, {{"x", 7.0}});
  const Mixture out = mix(a, b);
  EXPECT_NEAR(out.amount("x"), a.amount("x") + b.amount("x"), 1e-12);
}

TEST(Mixing, MixWithEmptyPlug) {
  const Mixture out = mix(plug(2.0, {{"x", 5.0}}), plug(0.0));
  EXPECT_DOUBLE_EQ(out.volume, 2.0);
  EXPECT_DOUBLE_EQ(out.concentration.at("x"), 5.0);
}

TEST(Mixing, SplitPreservesConcentrationAndTotalVolume) {
  const auto parts = split(plug(3.0, {{"x", 6.0}}), 3);
  ASSERT_EQ(parts.size(), 3u);
  double total = 0.0;
  for (const auto& p : parts) {
    EXPECT_DOUBLE_EQ(p.volume, 1.0);
    EXPECT_DOUBLE_EQ(p.concentration.at("x"), 6.0);
    total += p.volume;
  }
  EXPECT_DOUBLE_EQ(total, 3.0);
}

TEST(Propagation, SerialDilutionHalvesPerLevel) {
  // sample -> d1 (mix with buffer) -> d2 -> d3: each stage mixes the
  // running plug 1:1 with fresh buffer, halving the concentration.
  GraphBuilder b;
  const auto sample = b.mix("sample", 1, 0.2);
  const auto buf1 = b.mix("buf1", 1, 0.2);
  const auto d1 = b.mix("d1", 1, 0.2);
  b.dep(sample, d1);
  b.dep(buf1, d1);
  const auto buf2 = b.mix("buf2", 1, 0.2);
  const auto d2 = b.mix("d2", 1, 0.2);
  b.dep(d1, d2);
  b.dep(buf2, d2);
  std::map<int, Mixture> sources;
  sources[sample.value] = plug(1.0, {{"protein", 8.0}});
  sources[buf1.value] = plug(1.0);
  // d1 output: 2.0 volume at 4.0 — but only half continues (single child,
  // so all of it) mixed with 1.0 buffer -> (2*4 + 0) / 3 ... careful: d1
  // has volume 2, buf2 volume 1 -> d2 = 8/3 concentration * ... amounts:
  // 8 units protein in 3 volume.
  const auto outputs = propagate_mixtures(b.graph(), sources);
  EXPECT_DOUBLE_EQ(outputs[static_cast<std::size_t>(d1.value)].volume, 2.0);
  EXPECT_DOUBLE_EQ(
      outputs[static_cast<std::size_t>(d1.value)].concentration.at(
          "protein"),
      4.0);
  EXPECT_NEAR(outputs[static_cast<std::size_t>(d2.value)].concentration.at(
                  "protein"),
              8.0 / 3.0, 1e-12);
}

TEST(Propagation, FanOutSplitsVolume) {
  GraphBuilder b;
  const auto src = b.mix("src", 1, 0.2);
  const auto l = b.mix("l", 1, 0.2);
  const auto r = b.mix("r", 1, 0.2);
  b.dep(src, l);
  b.dep(src, r);
  std::map<int, Mixture> sources;
  sources[src.value] = plug(2.0, {{"x", 6.0}});
  const auto outputs = propagate_mixtures(b.graph(), sources);
  EXPECT_DOUBLE_EQ(outputs[static_cast<std::size_t>(l.value)].volume, 1.0);
  EXPECT_DOUBLE_EQ(outputs[static_cast<std::size_t>(r.value)].volume, 1.0);
  EXPECT_DOUBLE_EQ(
      outputs[static_cast<std::size_t>(l.value)].concentration.at("x"),
      6.0);
}

TEST(Propagation, DefaultSourcesAreUnitBuffer) {
  GraphBuilder b;
  const auto a = b.mix("a", 1, 0.2);
  const auto outputs = propagate_mixtures(b.graph(), {});
  EXPECT_DOUBLE_EQ(outputs[static_cast<std::size_t>(a.value)].volume, 1.0);
  EXPECT_TRUE(
      outputs[static_cast<std::size_t>(a.value)].concentration.empty());
}

TEST(Propagation, VolumeConservedOnPaperBenchmarks) {
  for (const auto& bench : paper_benchmarks()) {
    EXPECT_NEAR(volume_conservation_error(bench.graph, {}), 0.0, 1e-9)
        << bench.name;
  }
}

TEST(Propagation, CpaDilutionTreeLevels) {
  // The CPA benchmark's dilution tree: the root's sample concentration is
  // halved at every tree level (each dilution mixes a parent share with an
  // equal implicit buffer volume... in our reconstruction each tree node
  // mixes only the parent's share, so concentration is preserved but the
  // VOLUME halves per level through the binary fan-out).
  const auto bench = make_cpa();
  std::map<int, Mixture> sources;
  sources[0] = plug(8.0, {{"protein", 1.0}});  // dil0 is operation 0
  const auto outputs = propagate_mixtures(bench.graph, sources);
  // Level-3 dilution nodes (dil7..dil14 by construction) carry 1/8 of the
  // root volume each: 8 * (1/2)^3 = 1.
  int leaves_checked = 0;
  for (const auto& op : bench.graph.operations()) {
    if (op.name.rfind("dil", 0) == 0 && op.name != "dil0") {
      const int idx = std::stoi(op.name.substr(3));
      if (idx >= 7) {  // the 8 leaves of the depth-3 tree
        EXPECT_NEAR(outputs[static_cast<std::size_t>(op.id.value)].volume,
                    1.0, 1e-9)
            << op.name;
        ++leaves_checked;
      }
    }
  }
  EXPECT_EQ(leaves_checked, 8);
}

}  // namespace
}  // namespace fbmb
