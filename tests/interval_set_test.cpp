#include "util/interval_set.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.hpp"

namespace fbmb {
namespace {

TEST(TimeInterval, Basics) {
  const TimeInterval iv{2.0, 5.0};
  EXPECT_DOUBLE_EQ(iv.duration(), 3.0);
  EXPECT_FALSE(iv.empty());
  EXPECT_TRUE((TimeInterval{3.0, 3.0}).empty());
  EXPECT_TRUE((TimeInterval{4.0, 3.0}).empty());
}

TEST(TimeInterval, HalfOpenOverlap) {
  const TimeInterval a{0.0, 2.0};
  EXPECT_FALSE(a.overlaps({2.0, 4.0}));  // touching: no conflict
  EXPECT_TRUE(a.overlaps({1.9, 4.0}));
  EXPECT_TRUE(a.overlaps({-1.0, 0.1}));
  EXPECT_FALSE(a.overlaps({-1.0, 0.0}));
  EXPECT_TRUE(a.overlaps({0.5, 1.5}));  // contained
  EXPECT_TRUE(a.overlaps({-1.0, 3.0}));  // containing
}

TEST(TimeInterval, ContainsPoint) {
  const TimeInterval iv{1.0, 2.0};
  EXPECT_TRUE(iv.contains(1.0));   // inclusive start
  EXPECT_FALSE(iv.contains(2.0));  // exclusive end
  EXPECT_TRUE(iv.contains(1.5));
}

TEST(IntervalSet, InsertDisjointRejectsOverlap) {
  IntervalSet set;
  EXPECT_TRUE(set.insert_disjoint({0.0, 2.0}));
  EXPECT_TRUE(set.insert_disjoint({5.0, 7.0}));
  EXPECT_TRUE(set.insert_disjoint({2.0, 3.0}));  // touching is fine
  EXPECT_FALSE(set.insert_disjoint({6.0, 8.0}));
  EXPECT_FALSE(set.insert_disjoint({-1.0, 0.5}));
  EXPECT_EQ(set.size(), 3u);
}

TEST(IntervalSet, InsertDisjointKeepsSorted) {
  IntervalSet set;
  EXPECT_TRUE(set.insert_disjoint({10.0, 12.0}));
  EXPECT_TRUE(set.insert_disjoint({0.0, 1.0}));
  EXPECT_TRUE(set.insert_disjoint({5.0, 6.0}));
  const auto& ivs = set.intervals();
  ASSERT_EQ(ivs.size(), 3u);
  EXPECT_TRUE(std::is_sorted(ivs.begin(), ivs.end(),
                             [](const TimeInterval& a, const TimeInterval& b) {
                               return a.start < b.start;
                             }));
}

TEST(IntervalSet, EmptyIntervalInsertIsNoop) {
  IntervalSet set;
  EXPECT_TRUE(set.insert_disjoint({3.0, 3.0}));
  EXPECT_TRUE(set.empty());
  set.insert_merged({4.0, 4.0});
  EXPECT_TRUE(set.empty());
}

TEST(IntervalSet, OverlapsQuery) {
  IntervalSet set;
  set.insert_disjoint({0.0, 2.0});
  set.insert_disjoint({4.0, 6.0});
  EXPECT_TRUE(set.overlaps({1.0, 1.5}));
  EXPECT_TRUE(set.overlaps({5.9, 10.0}));
  EXPECT_FALSE(set.overlaps({2.0, 4.0}));  // exactly the gap
  EXPECT_FALSE(set.overlaps({6.0, 8.0}));
  EXPECT_FALSE(set.overlaps({3.0, 3.0}));  // empty never overlaps
}

TEST(IntervalSet, FirstOverlapReturnsTheInterval) {
  IntervalSet set;
  set.insert_disjoint({0.0, 2.0});
  set.insert_disjoint({4.0, 6.0});
  const auto hit = set.first_overlap({5.0, 9.0});
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->start, 4.0);
  EXPECT_FALSE(set.first_overlap({2.0, 4.0}).has_value());
}

TEST(IntervalSet, InsertMergedCoalesces) {
  IntervalSet set;
  set.insert_merged({0.0, 2.0});
  set.insert_merged({4.0, 6.0});
  set.insert_merged({1.0, 5.0});  // bridges both
  ASSERT_EQ(set.size(), 1u);
  EXPECT_DOUBLE_EQ(set.intervals()[0].start, 0.0);
  EXPECT_DOUBLE_EQ(set.intervals()[0].end, 6.0);
}

TEST(IntervalSet, InsertMergedCoalescesTouching) {
  IntervalSet set;
  set.insert_merged({0.0, 2.0});
  set.insert_merged({2.0, 3.0});
  ASSERT_EQ(set.size(), 1u);
  EXPECT_DOUBLE_EQ(set.intervals()[0].end, 3.0);
}

TEST(IntervalSet, EarliestFit) {
  IntervalSet set;
  set.insert_disjoint({2.0, 4.0});
  set.insert_disjoint({6.0, 8.0});
  EXPECT_DOUBLE_EQ(set.earliest_fit(0.0, 2.0), 0.0);   // fits before
  EXPECT_DOUBLE_EQ(set.earliest_fit(0.0, 2.5), 8.0);   // gaps too small
  EXPECT_DOUBLE_EQ(set.earliest_fit(3.0, 1.0), 4.0);   // pushed past first
  EXPECT_DOUBLE_EQ(set.earliest_fit(4.0, 2.0), 4.0);   // exact gap
  EXPECT_DOUBLE_EQ(set.earliest_fit(9.0, 100.0), 9.0); // after everything
}

TEST(IntervalSet, EarliestFitOnEmptySet) {
  IntervalSet set;
  EXPECT_DOUBLE_EQ(set.earliest_fit(3.5, 10.0), 3.5);
}

TEST(IntervalSet, TotalDuration) {
  IntervalSet set;
  set.insert_disjoint({0.0, 2.0});
  set.insert_disjoint({4.0, 7.0});
  EXPECT_DOUBLE_EQ(set.total_duration(), 5.0);
  set.clear();
  EXPECT_DOUBLE_EQ(set.total_duration(), 0.0);
}

/// Property: a randomized sequence of insert_disjoint calls never produces
/// overlapping stored intervals, and overlaps() agrees with a brute-force
/// check.
TEST(IntervalSetProperty, RandomizedDisjointness) {
  Rng rng(1234);
  for (int trial = 0; trial < 50; ++trial) {
    IntervalSet set;
    std::vector<TimeInterval> accepted;
    for (int i = 0; i < 100; ++i) {
      const double start = rng.uniform(0.0, 100.0);
      const TimeInterval iv{start, start + rng.uniform(0.1, 5.0)};
      const bool brute_overlap =
          std::any_of(accepted.begin(), accepted.end(),
                      [&](const TimeInterval& a) { return a.overlaps(iv); });
      EXPECT_EQ(set.overlaps(iv), brute_overlap);
      if (set.insert_disjoint(iv)) {
        EXPECT_FALSE(brute_overlap);
        accepted.push_back(iv);
      } else {
        EXPECT_TRUE(brute_overlap);
      }
    }
    // Stored intervals pairwise disjoint.
    const auto& ivs = set.intervals();
    for (std::size_t i = 1; i < ivs.size(); ++i) {
      EXPECT_LE(ivs[i - 1].end, ivs[i].start);
    }
  }
}

/// Property: insert_merged yields the same coverage as the union of inputs.
TEST(IntervalSetProperty, MergedCoverageMatchesBruteForce) {
  Rng rng(99);
  for (int trial = 0; trial < 25; ++trial) {
    IntervalSet set;
    std::vector<TimeInterval> inputs;
    for (int i = 0; i < 40; ++i) {
      const double start = rng.uniform(0.0, 50.0);
      const TimeInterval iv{start, start + rng.uniform(0.1, 8.0)};
      inputs.push_back(iv);
      set.insert_merged(iv);
    }
    // Sample points and compare membership.
    for (int s = 0; s < 200; ++s) {
      const double t = rng.uniform(-1.0, 60.0);
      const bool in_union =
          std::any_of(inputs.begin(), inputs.end(),
                      [&](const TimeInterval& iv) { return iv.contains(t); });
      const bool in_set = set.overlaps({t, t + 1e-9});
      EXPECT_EQ(in_union, in_set) << "at t=" << t;
    }
  }
}

}  // namespace
}  // namespace fbmb
