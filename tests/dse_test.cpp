#include "core/dse.hpp"

#include <gtest/gtest.h>

#include "bench_suite/benchmarks.hpp"
#include "graph/graph_builder.hpp"

namespace fbmb {
namespace {

DseOptions fast_options() {
  DseOptions opts;
  opts.synthesis.placer.restarts = 1;
  opts.synthesis.placer.sa.iterations_per_temperature = 20;
  return opts;
}

TEST(Dse, SweepsWithinBounds) {
  GraphBuilder b;
  const auto a = b.mix("a", 3, 0.2);
  const auto c = b.mix("c", 3, 0.2);
  const auto d = b.detect("d", 2, 0.2);
  b.dep(a, d);
  (void)c;
  DseOptions opts = fast_options();
  opts.max_allocation = {2, 0, 0, 2};
  const auto result = explore_allocations(b.graph(), b.wash_model(), opts);
  // mixers 1..2 x detectors 1..2 = 4 points (heaters/filters stay 0).
  EXPECT_EQ(result.points.size(), 4u);
  for (const auto& p : result.points) {
    EXPECT_GE(p.allocation.mixers, 1);
    EXPECT_LE(p.allocation.mixers, 2);
    EXPECT_EQ(p.allocation.heaters, 0);
    EXPECT_GT(p.completion_time, 0.0);
    EXPECT_GT(p.component_area, 0);
  }
}

TEST(Dse, UnusedTypesStayAtZero) {
  GraphBuilder b;
  b.mix("a", 3, 0.2);
  DseOptions opts = fast_options();
  opts.max_allocation = {2, 2, 2, 2};
  const auto result = explore_allocations(b.graph(), b.wash_model(), opts);
  for (const auto& p : result.points) {
    EXPECT_GE(p.allocation.heaters, 0);
  }
  // Points exist with zero heaters/filters/detectors (assay needs none,
  // lower bound is 0) — and the frontier's cheapest point allocates none.
  ASSERT_FALSE(result.frontier.empty());
  EXPECT_EQ(result.frontier.front().allocation.heaters, 0);
  EXPECT_EQ(result.frontier.front().allocation.detectors, 0);
}

TEST(Dse, FrontierIsPareto) {
  const auto bench = make_ivd();
  DseOptions opts = fast_options();
  opts.max_allocation = {3, 0, 0, 2};
  const auto result =
      explore_allocations(bench.graph, bench.wash, opts);
  ASSERT_FALSE(result.frontier.empty());
  // No frontier point dominates another.
  for (const auto& a : result.frontier) {
    for (const auto& b : result.frontier) {
      if (a.allocation == b.allocation) continue;
      const bool dominates = a.completion_time <= b.completion_time &&
                             a.component_area <= b.component_area &&
                             (a.completion_time < b.completion_time ||
                              a.component_area < b.component_area);
      EXPECT_FALSE(dominates)
          << a.allocation.to_string() << " dominates "
          << b.allocation.to_string();
    }
  }
  // Frontier sorted by area, completion non-increasing along it.
  for (std::size_t i = 1; i < result.frontier.size(); ++i) {
    EXPECT_GE(result.frontier[i].component_area,
              result.frontier[i - 1].component_area);
    EXPECT_LE(result.frontier[i].completion_time,
              result.frontier[i - 1].completion_time + 1e-9);
  }
}

TEST(Dse, MoreComponentsNeverHurtCompletion) {
  // The best completion within larger bounds is <= within smaller bounds.
  const auto bench = make_ivd();
  DseOptions small = fast_options();
  small.max_allocation = {1, 0, 0, 1};
  DseOptions large = fast_options();
  large.max_allocation = {3, 0, 0, 2};
  const auto rs = explore_allocations(bench.graph, bench.wash, small);
  const auto rl = explore_allocations(bench.graph, bench.wash, large);
  auto best = [](const DseResult& r) {
    double b = 1e18;
    for (const auto& p : r.points) b = std::min(b, p.completion_time);
    return b;
  };
  EXPECT_LE(best(rl), best(rs) + 1e-9);
}

TEST(Dse, TotalComponentCap) {
  const auto bench = make_ivd();
  DseOptions opts = fast_options();
  opts.max_allocation = {3, 0, 0, 3};
  opts.max_total_components = 3;
  const auto result = explore_allocations(bench.graph, bench.wash, opts);
  for (const auto& p : result.points) {
    EXPECT_LE(p.allocation.total(), 3);
  }
}

}  // namespace
}  // namespace fbmb
