#include "graph/graph_algorithms.hpp"

#include <gtest/gtest.h>

#include "bench_suite/benchmarks.hpp"

namespace fbmb {
namespace {

SequencingGraph chain3() {
  SequencingGraph g;
  const auto a = g.add_operation("a", ComponentType::kMixer, 5.0);
  const auto b = g.add_operation("b", ComponentType::kMixer, 3.0);
  const auto c = g.add_operation("c", ComponentType::kMixer, 2.0);
  g.add_dependency(a, b);
  g.add_dependency(b, c);
  return g;
}

TEST(LongestPathToSink, Chain) {
  const auto g = chain3();
  const auto dist = longest_path_to_sink(g, 2.0);
  EXPECT_DOUBLE_EQ(dist[2], 2.0);            // c alone
  EXPECT_DOUBLE_EQ(dist[1], 3.0 + 2.0 + 2.0);
  EXPECT_DOUBLE_EQ(dist[0], 5.0 + 2.0 + 3.0 + 2.0 + 2.0);
}

TEST(LongestPathToSink, PicksLongerBranch) {
  SequencingGraph g;
  const auto a = g.add_operation("a", ComponentType::kMixer, 1.0);
  const auto b = g.add_operation("b", ComponentType::kMixer, 10.0);
  const auto c = g.add_operation("c", ComponentType::kMixer, 2.0);
  g.add_dependency(a, b);
  g.add_dependency(a, c);
  const auto dist = longest_path_to_sink(g, 2.0);
  EXPECT_DOUBLE_EQ(dist[0], 1.0 + 2.0 + 10.0);
}

TEST(LongestPathToSink, PaperExamplePriorityIs21) {
  // Section IV-A: with t_c = 2 the priority value of o1 is 21 for the
  // Fig. 2(a) bioassay (path o1 -> o5 -> o7 -> o10).
  const auto bench = make_paper_example();
  const auto dist = longest_path_to_sink(bench.graph, 2.0);
  EXPECT_DOUBLE_EQ(dist[0], 21.0);
}

TEST(LongestPathToSink, ZeroTransportTime) {
  const auto g = chain3();
  const auto dist = longest_path_to_sink(g, 0.0);
  EXPECT_DOUBLE_EQ(dist[0], 10.0);  // pure duration sum
}

TEST(LongestPathFromSource, Chain) {
  const auto g = chain3();
  const auto dist = longest_path_from_source(g, 2.0);
  EXPECT_DOUBLE_EQ(dist[0], 5.0);
  EXPECT_DOUBLE_EQ(dist[1], 5.0 + 2.0 + 3.0);
  EXPECT_DOUBLE_EQ(dist[2], 5.0 + 2.0 + 3.0 + 2.0 + 2.0);
}

TEST(LongestPathFromSourceAndToSink, AgreeOnTotal) {
  const auto bench = make_paper_example();
  const auto to_sink = longest_path_to_sink(bench.graph, 2.0);
  const auto from_src = longest_path_from_source(bench.graph, 2.0);
  // For every operation: from_source + to_sink - duration <= total critical
  // path, with equality somewhere.
  const double total = critical_path_length(bench.graph, 2.0);
  bool equality_seen = false;
  for (const auto& op : bench.graph.operations()) {
    const auto i = static_cast<std::size_t>(op.id.value);
    const double through = from_src[i] + to_sink[i] - op.duration;
    EXPECT_LE(through, total + 1e-9);
    if (std::abs(through - total) < 1e-9) equality_seen = true;
  }
  EXPECT_TRUE(equality_seen);
}

TEST(CriticalPath, FollowsLongestRoute) {
  const auto bench = make_paper_example();
  const auto path = critical_path(bench.graph, 2.0);
  ASSERT_FALSE(path.empty());
  // o1 -> o5 -> o7 -> o10 (ids 0, 4, 6, 9).
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path[0].value, 0);
  EXPECT_EQ(path[1].value, 4);
  EXPECT_EQ(path[2].value, 6);
  EXPECT_EQ(path[3].value, 9);
}

TEST(CriticalPath, EmptyGraph) {
  SequencingGraph g;
  EXPECT_TRUE(critical_path(g, 2.0).empty());
  EXPECT_DOUBLE_EQ(critical_path_length(g, 2.0), 0.0);
}

TEST(CriticalPath, EdgesExistAlongPath) {
  const auto bench = make_cpa();
  const auto path = critical_path(bench.graph, 2.0);
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_TRUE(bench.graph.has_dependency(path[i - 1], path[i]));
  }
}

TEST(DepthLevels, Diamond) {
  SequencingGraph g;
  const auto a = g.add_operation("a", ComponentType::kMixer, 1.0);
  const auto b = g.add_operation("b", ComponentType::kMixer, 1.0);
  const auto c = g.add_operation("c", ComponentType::kMixer, 1.0);
  const auto d = g.add_operation("d", ComponentType::kMixer, 1.0);
  g.add_dependency(a, b);
  g.add_dependency(a, c);
  g.add_dependency(b, d);
  g.add_dependency(c, d);
  const auto depth = depth_levels(g);
  EXPECT_EQ(depth[0], 0);
  EXPECT_EQ(depth[1], 1);
  EXPECT_EQ(depth[2], 1);
  EXPECT_EQ(depth[3], 2);
}

TEST(Reaches, TransitiveClosure) {
  const auto g = chain3();
  EXPECT_TRUE(reaches(g, OperationId{0}, OperationId{2}));
  EXPECT_TRUE(reaches(g, OperationId{0}, OperationId{0}));  // reflexive
  EXPECT_FALSE(reaches(g, OperationId{2}, OperationId{0}));
}

TEST(OperationTypeHistogram, CountsAllTypes) {
  const auto bench = make_ivd();
  const auto hist = operation_type_histogram(bench.graph);
  EXPECT_EQ(hist[static_cast<std::size_t>(ComponentType::kMixer)], 6);
  EXPECT_EQ(hist[static_cast<std::size_t>(ComponentType::kDetector)], 6);
  EXPECT_EQ(hist[static_cast<std::size_t>(ComponentType::kHeater)], 0);
}

}  // namespace
}  // namespace fbmb
