// Golden snapshots: the deterministic flows must keep producing exactly
// these numbers. A change here is not necessarily a bug — but it IS a
// behavioural change that must be deliberate (update the constants in the
// same commit that changes the algorithm and explain why).

#include <gtest/gtest.h>

#include "bench_suite/benchmarks.hpp"
#include "core/synthesis.hpp"
#include "schedule/list_scheduler.hpp"

namespace fbmb {
namespace {

TEST(Golden, PcrScheduleTimeline) {
  const auto bench = make_pcr();
  const auto s = schedule_bioassay(bench.graph, Allocation(bench.allocation),
                                   bench.wash);
  EXPECT_DOUBLE_EQ(s.completion_time, 28.2);
  // Leaves start immediately on the three mixers.
  EXPECT_DOUBLE_EQ(s.at(OperationId{0}).start, 0.0);  // m1
  EXPECT_DOUBLE_EQ(s.at(OperationId{1}).start, 0.0);  // m2
  EXPECT_DOUBLE_EQ(s.at(OperationId{2}).start, 0.0);  // m3
  // m4 waits for a washed mixer (0.2 s wash): 6.2.
  EXPECT_DOUBLE_EQ(s.at(OperationId{3}).start, 6.2);
  // The final mix runs in place.
  EXPECT_TRUE(s.at(OperationId{6}).consumed_in_place());
  EXPECT_EQ(s.transports.size(), 3u);
}

TEST(Golden, IvdFlowsTie) {
  const auto bench = make_ivd();
  const Allocation alloc(bench.allocation);
  const auto ours = synthesize_dcsa(bench.graph, alloc, bench.wash);
  const auto ba = synthesize_baseline(bench.graph, alloc, bench.wash);
  EXPECT_DOUBLE_EQ(ours.completion_time, 22.2);
  EXPECT_DOUBLE_EQ(ba.completion_time, 22.2);
  EXPECT_NEAR(ours.utilization, ba.utilization, 1e-9);
}

TEST(Golden, CpaScheduleNumbers) {
  const auto bench = make_cpa();
  const Allocation alloc(bench.allocation);
  const auto s = schedule_bioassay(bench.graph, alloc, bench.wash);
  EXPECT_DOUBLE_EQ(s.completion_time, 68.6);
  SchedulerOptions ba;
  ba.policy = BindingPolicy::kBaseline;
  ba.refine_storage = false;
  const auto s_ba = schedule_bioassay(bench.graph, alloc, bench.wash, ba);
  EXPECT_NEAR(s_ba.completion_time, 78.6, 1e-9);
}

TEST(Golden, PaperExamplePriorityAndCompletion) {
  const auto bench = make_paper_example();
  const Allocation alloc(bench.allocation);
  const auto s = schedule_bioassay(bench.graph, alloc, bench.wash);
  EXPECT_DOUBLE_EQ(s.completion_time, 21.0);
}

TEST(Golden, SyntheticGeneratorFingerprint) {
  // The seeded generator's structure is pinned: any change to the RNG or
  // the generation logic shifts every synthetic benchmark result.
  const auto bench = make_synthetic(2);
  EXPECT_EQ(bench.graph.operation_count(), 30u);
  EXPECT_EQ(bench.graph.dependency_count(), 34u);
  const auto& first = bench.graph.operation(OperationId{0});
  EXPECT_EQ(first.type, ComponentType::kMixer);
  EXPECT_DOUBLE_EQ(first.duration, 3.0);
}

}  // namespace
}  // namespace fbmb
