#include "runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <optional>
#include <thread>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace fbmb {
namespace {

TEST(ThreadPool, RunsSubmittedTasksAndReturnsValues) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_EQ(pool.thread_count(), ThreadPool::default_thread_count());
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 7; });
  auto boom = pool.submit(
      []() -> int { throw std::runtime_error("synthesis failed"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(boom.get(), std::runtime_error);
  // The worker that ran the throwing task must still be alive.
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, SubmitFromInsideATaskDoesNotDeadlock) {
  ThreadPool pool(2);
  auto outer = pool.submit([&pool] {
    auto inner = pool.submit([] { return 21; });
    return inner.get() * 2;
  });
  EXPECT_EQ(outer.get(), 42);
}

TEST(ThreadPool, SubmitFromTaskWithTinyQueueRunsInline) {
  // A single worker submitting children and blocking on their futures:
  // the worker-inline path must kick in, because nobody else could ever
  // drain the queue. A queueing submit here would deadlock (and the test
  // would time out).
  ThreadPool pool(1, /*queue_capacity=*/1);
  auto outer = pool.submit([&pool] {
    int sum = 0;
    for (int i = 0; i < 10; ++i) {
      sum += pool.submit([i] { return i; }).get();
    }
    return sum;
  });
  EXPECT_EQ(outer.get(), 45);
}

TEST(ThreadPool, StressManyProducersBoundedQueue) {
  ThreadPool pool(4, /*queue_capacity=*/8);
  std::atomic<int> executed{0};
  constexpr int kProducers = 8;
  constexpr int kTasksPerProducer = 200;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &executed] {
      std::vector<std::future<void>> futures;
      futures.reserve(kTasksPerProducer);
      for (int i = 0; i < kTasksPerProducer; ++i) {
        futures.push_back(pool.submit([&executed] {
          executed.fetch_add(1, std::memory_order_relaxed);
        }));
      }
      for (auto& future : futures) future.get();
    });
  }
  for (std::thread& producer : producers) producer.join();
  EXPECT_EQ(executed.load(), kProducers * kTasksPerProducer);
  EXPECT_LE(pool.max_queue_depth(), 8u);
}

TEST(ThreadPool, ParallelInvokeRunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(64);
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    tasks.push_back([&counts, i] { counts[i].fetch_add(1); });
  }
  parallel_invoke(pool, tasks);
  for (const auto& count : counts) EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ParallelInvokeRethrowsFirstTaskError) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 16; ++i) {
    tasks.push_back([&ran, i] {
      ran.fetch_add(1);
      if (i == 5) throw std::runtime_error("restart 5 failed");
    });
  }
  EXPECT_THROW(parallel_invoke(pool, tasks), std::runtime_error);
  // Every task still ran (the join waits for all of them).
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPool, ParallelInvokeNestedInsidePoolJobs) {
  // Jobs on the pool each fork their own parallel_invoke over the same
  // pool — the engine's SA-restart topology. Must complete on any pool
  // size without deadlock.
  ThreadPool pool(2);
  std::vector<std::future<long>> jobs;
  for (int j = 0; j < 6; ++j) {
    jobs.push_back(pool.submit([&pool] {
      std::vector<long> slots(8, 0);
      std::vector<std::function<void()>> tasks;
      for (std::size_t i = 0; i < slots.size(); ++i) {
        tasks.push_back([&slots, i] {
          slots[i] = static_cast<long>(i) + 1;
        });
      }
      parallel_invoke(pool, tasks);
      return std::accumulate(slots.begin(), slots.end(), 0L);
    }));
  }
  for (auto& job : jobs) EXPECT_EQ(job.get(), 36L);
}


TEST(ThreadPool, TrySubmitReturnsWorkingFuture) {
  ThreadPool pool(2);
  auto future = pool.try_submit([] { return 6 * 7; });
  ASSERT_TRUE(future.has_value());
  EXPECT_EQ(future->get(), 42);

  auto boom = pool.try_submit(
      []() -> int { throw std::runtime_error("job failed"); });
  ASSERT_TRUE(boom.has_value());
  EXPECT_THROW(boom->get(), std::runtime_error);
}

TEST(ThreadPool, TrySubmitRejectsOnFullQueueWithoutSideEffects) {
  ThreadPool pool(1, /*queue_capacity=*/1);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  auto blocker = pool.submit([gate] { gate.wait(); });
  // Wait for the worker to pick the blocker up so the queue is empty.
  while (pool.pending() > 0) std::this_thread::yield();

  auto queued = pool.try_submit([] { return 1; });
  ASSERT_TRUE(queued.has_value());  // fills the single queue slot

  std::atomic<bool> ran{false};
  auto rejected = pool.try_submit([&ran] {
    ran.store(true);
    return 2;
  });
  // Unlike submit(), rejection neither blocks nor runs inline.
  EXPECT_FALSE(rejected.has_value());
  EXPECT_FALSE(ran.load());

  release.set_value();
  blocker.get();
  EXPECT_EQ(queued->get(), 1);
  EXPECT_FALSE(ran.load());  // the rejected task never ran at all

  // Capacity freed: admission works again.
  auto again = pool.try_submit([] { return 3; });
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->get(), 3);
}

TEST(ThreadPool, StressTrySubmitUnderContention) {
  // Many producers hammering a tiny queue: every accepted future must
  // complete, every rejected task must never execute, and the counts must
  // reconcile exactly.
  ThreadPool pool(2, /*queue_capacity=*/4);
  constexpr int kProducers = 8;
  constexpr int kAttempts = 500;
  std::atomic<int> executed{0};
  std::atomic<int> accepted{0};
  std::atomic<int> rejected{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      std::vector<std::future<void>> futures;
      futures.reserve(kAttempts);
      for (int i = 0; i < kAttempts; ++i) {
        auto future = pool.try_submit(
            [&executed] { executed.fetch_add(1); });
        if (future.has_value()) {
          accepted.fetch_add(1);
          futures.push_back(std::move(*future));
        } else {
          rejected.fetch_add(1);
        }
      }
      for (auto& future : futures) future.get();
    });
  }
  for (std::thread& producer : producers) producer.join();

  EXPECT_EQ(accepted.load() + rejected.load(), kProducers * kAttempts);
  EXPECT_EQ(executed.load(), accepted.load());
  EXPECT_GT(accepted.load(), 0);
  EXPECT_LE(pool.max_queue_depth(), 4u);
}

}  // namespace
}  // namespace fbmb
