#include "schedule/retiming.hpp"

#include <gtest/gtest.h>

#include "bench_suite/benchmarks.hpp"
#include "graph/graph_builder.hpp"
#include "schedule/list_scheduler.hpp"
#include "schedule/validator.hpp"

namespace fbmb {
namespace {

struct Fixture {
  SequencingGraph graph;
  Allocation alloc;
  WashModel wash;
  Schedule schedule;
};

/// a (mixer) -> d (detector), plus an independent second mixer chain, so
/// there are transports to delay and component queues to preserve.
Fixture simple_fixture() {
  GraphBuilder b;
  const auto a = b.mix("a", 3, 2.0);
  const auto d = b.detect("d", 4, 0.2);
  const auto e = b.mix("e", 5, 2.0);
  const auto f = b.detect("f", 2, 0.2);
  b.dep(a, d);
  b.dep(e, f);
  Fixture fx{b.graph(), Allocation({2, 0, 0, 1}), b.wash_model(), {}};
  fx.schedule = schedule_bioassay(fx.graph, fx.alloc, fx.wash);
  return fx;
}

TEST(Retiming, ZeroDelaysLeaveScheduleUntouched) {
  auto fx = simple_fixture();
  const Schedule before = fx.schedule;
  apply_transport_delays(fx.schedule, fx.graph,
                         std::vector<double>(fx.schedule.transports.size(),
                                             0.0));
  for (std::size_t i = 0; i < before.operations.size(); ++i) {
    EXPECT_DOUBLE_EQ(fx.schedule.operations[i].start,
                     before.operations[i].start);
    EXPECT_DOUBLE_EQ(fx.schedule.operations[i].end,
                     before.operations[i].end);
  }
  EXPECT_DOUBLE_EQ(fx.schedule.completion_time, before.completion_time);
}

TEST(Retiming, DelayedTransportPushesConsumer) {
  auto fx = simple_fixture();
  std::vector<double> delays(fx.schedule.transports.size(), 0.0);
  // Delay the a -> d transport by 5 seconds.
  std::size_t target = 0;
  for (std::size_t i = 0; i < fx.schedule.transports.size(); ++i) {
    if (fx.graph.operation(fx.schedule.transports[i].producer).name == "a") {
      target = i;
    }
  }
  const double old_start =
      fx.schedule.at(fx.schedule.transports[target].consumer).start;
  delays[target] = 5.0;
  apply_transport_delays(fx.schedule, fx.graph, delays);
  const auto& t = fx.schedule.transports[target];
  EXPECT_GE(fx.schedule.at(t.consumer).start, old_start + 5.0 - 1e-9);
  EXPECT_GE(t.departure + t.transport_time, fx.schedule.at(t.consumer).start - 1e-9);
  // Still a valid schedule.
  const auto errors =
      validate_schedule(fx.schedule, fx.graph, fx.alloc, fx.wash);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
}

TEST(Retiming, NeverMovesOperationsEarlier) {
  const auto bench = make_cpa();
  const Allocation alloc(bench.allocation);
  auto schedule = schedule_bioassay(bench.graph, alloc, bench.wash);
  const Schedule before = schedule;
  std::vector<double> delays(schedule.transports.size(), 0.0);
  for (std::size_t i = 0; i < delays.size(); i += 3) delays[i] = 2.5;
  apply_transport_delays(schedule, bench.graph, delays);
  for (std::size_t i = 0; i < before.operations.size(); ++i) {
    EXPECT_GE(schedule.operations[i].start,
              before.operations[i].start - 1e-9);
    EXPECT_NEAR(schedule.operations[i].end - schedule.operations[i].start,
                before.operations[i].end - before.operations[i].start, 1e-9)
        << "durations preserved";
  }
  EXPECT_GE(schedule.completion_time, before.completion_time - 1e-9);
}

TEST(Retiming, ResultIsValidOnAllBenchmarks) {
  for (const auto& bench : paper_benchmarks()) {
    const Allocation alloc(bench.allocation);
    for (const auto policy :
         {BindingPolicy::kDcsa, BindingPolicy::kBaseline}) {
      SchedulerOptions opts;
      opts.policy = policy;
      auto schedule = schedule_bioassay(bench.graph, alloc, bench.wash, opts);
      std::vector<double> delays(schedule.transports.size(), 0.0);
      // Delay every other transport by an id-dependent amount.
      for (std::size_t i = 0; i < delays.size(); ++i) {
        if (i % 2 == 0) delays[i] = 1.0 + static_cast<double>(i % 5);
      }
      apply_transport_delays(schedule, bench.graph, delays);
      const auto errors =
          validate_schedule(schedule, bench.graph, alloc, bench.wash);
      EXPECT_TRUE(errors.empty())
          << bench.name << ": " << (errors.empty() ? "" : errors.front());
    }
  }
}

TEST(Retiming, WashWindowsSurviveDepartureDelays) {
  // Regression for the interaction found during bring-up: delaying the
  // departure of a fluid whose component is reused later must push the
  // next operation past the (departure + wash) point, not just preserve
  // the original end-to-start gap.
  GraphBuilder b;
  const auto o1 = b.mix("o1", 3, 4.0);   // slow wash
  const auto o2 = b.mix("o2", 3, 0.2);   // reuses the mixer after o1
  const auto o3 = b.mix("o3", 2, 0.2);   // consumer of o1 via transport
  b.dep(o1, o3);
  b.dep(o2, o3);
  const Allocation alloc(AllocationSpec{2, 0, 0, 0});
  auto schedule = schedule_bioassay(b.graph(), alloc, b.wash_model());
  std::vector<double> delays(schedule.transports.size(), 0.0);
  for (std::size_t i = 0; i < schedule.transports.size(); ++i) {
    if (schedule.transports[i].producer == o1) delays[i] = 6.0;
  }
  apply_transport_delays(schedule, b.graph(), delays);
  const auto errors =
      validate_schedule(schedule, b.graph(), alloc, b.wash_model());
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
}

TEST(Retiming, CompletionTimeRecomputed) {
  auto fx = simple_fixture();
  std::vector<double> delays(fx.schedule.transports.size(), 10.0);
  apply_transport_delays(fx.schedule, fx.graph, delays);
  double max_end = 0.0;
  for (const auto& so : fx.schedule.operations) {
    max_end = std::max(max_end, so.end);
  }
  EXPECT_DOUBLE_EQ(fx.schedule.completion_time, max_end);
}

}  // namespace
}  // namespace fbmb
