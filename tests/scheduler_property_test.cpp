// Parameterized property suite: every schedule the library produces — for
// both binding policies, across benchmark and synthetic inputs — satisfies
// the full invariant set re-derived by validate_schedule.

#include <gtest/gtest.h>

#include "bench_suite/benchmarks.hpp"
#include "bench_suite/synthetic.hpp"
#include "schedule/list_scheduler.hpp"
#include "schedule/metrics.hpp"
#include "schedule/validator.hpp"

namespace fbmb {
namespace {

struct Case {
  std::string name;
  int operations;
  std::uint64_t seed;
  AllocationSpec allocation;
};

class SchedulerPropertyTest
    : public ::testing::TestWithParam<std::tuple<Case, BindingPolicy>> {};

std::vector<Case> synthetic_cases() {
  std::vector<Case> cases;
  int idx = 0;
  for (int ops : {5, 12, 25, 40, 60}) {
    for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
      Case c;
      c.name = "ops" + std::to_string(ops) + "_seed" + std::to_string(seed);
      c.operations = ops;
      c.seed = seed;
      // Cycle through allocation shapes, always covering all four types.
      switch (idx++ % 3) {
        case 0: c.allocation = {3, 1, 1, 1}; break;
        case 1: c.allocation = {2, 2, 2, 2}; break;
        default: c.allocation = {5, 1, 2, 1}; break;
      }
      cases.push_back(c);
    }
  }
  return cases;
}

TEST_P(SchedulerPropertyTest, ScheduleSatisfiesAllInvariants) {
  const auto& [c, policy] = GetParam();
  SyntheticSpec spec;
  spec.operations = c.operations;
  spec.seed = c.seed;
  spec.allocation = c.allocation;
  const SequencingGraph graph = generate_synthetic_graph(spec);
  const Allocation alloc(c.allocation);
  const WashModel wash;

  SchedulerOptions opts;
  opts.policy = policy;
  opts.refine_storage = policy == BindingPolicy::kDcsa;
  const Schedule schedule = schedule_bioassay(graph, alloc, wash, opts);

  const auto errors = validate_schedule(schedule, graph, alloc, wash);
  EXPECT_TRUE(errors.empty())
      << c.name << ": " << (errors.empty() ? "" : errors.front());

  // Every dependency edge is either in place or has exactly one transport.
  std::size_t in_place = 0;
  for (const auto& so : schedule.operations) {
    if (so.consumed_in_place()) ++in_place;
  }
  EXPECT_EQ(schedule.transports.size() + in_place, graph.dependency_count());

  // Cache times are non-negative by construction.
  for (const auto& t : schedule.transports) {
    EXPECT_GE(t.cache_time(), 0.0);
    EXPECT_GE(t.departure_deadline, t.departure - 1e-9);
  }

  // Utilization is a proper ratio.
  const double ur = resource_utilization(schedule, alloc);
  EXPECT_GE(ur, 0.0);
  EXPECT_LE(ur, 1.0 + 1e-9);
}

TEST_P(SchedulerPropertyTest, TransportTimeScalesMonotonically) {
  const auto& [c, policy] = GetParam();
  SyntheticSpec spec;
  spec.operations = c.operations;
  spec.seed = c.seed;
  spec.allocation = c.allocation;
  const SequencingGraph graph = generate_synthetic_graph(spec);
  const Allocation alloc(c.allocation);
  const WashModel wash;

  SchedulerOptions fast;
  fast.policy = policy;
  fast.transport_time = 1.0;
  SchedulerOptions slow;
  slow.policy = policy;
  slow.transport_time = 4.0;
  const auto s_fast = schedule_bioassay(graph, alloc, wash, fast);
  const auto s_slow = schedule_bioassay(graph, alloc, wash, slow);
  // Slower transports cannot make the assay finish sooner.
  EXPECT_LE(s_fast.completion_time, s_slow.completion_time + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Synthetic, SchedulerPropertyTest,
    ::testing::Combine(::testing::ValuesIn(synthetic_cases()),
                       ::testing::Values(BindingPolicy::kDcsa,
                                         BindingPolicy::kBaseline)),
    [](const ::testing::TestParamInfo<SchedulerPropertyTest::ParamType>&
           info) {
      const Case& c = std::get<0>(info.param);
      const BindingPolicy policy = std::get<1>(info.param);
      return c.name + (policy == BindingPolicy::kDcsa ? "_dcsa" : "_ba");
    });

class PaperBenchmarkScheduleTest
    : public ::testing::TestWithParam<std::tuple<int, BindingPolicy>> {};

constexpr const char* kNames[] = {"PCR",        "IVD",        "CPA",
                                  "Synthetic1", "Synthetic2", "Synthetic3",
                                  "Synthetic4"};

TEST_P(PaperBenchmarkScheduleTest, ValidOnPaperBenchmarks) {
  const auto& [index, policy] = GetParam();
  const auto benches = paper_benchmarks();
  const Benchmark& bench = benches[static_cast<std::size_t>(index)];
  const Allocation alloc(bench.allocation);
  SchedulerOptions opts;
  opts.policy = policy;
  const Schedule schedule =
      schedule_bioassay(bench.graph, alloc, bench.wash, opts);
  const auto errors =
      validate_schedule(schedule, bench.graph, alloc, bench.wash);
  EXPECT_TRUE(errors.empty())
      << bench.name << ": " << (errors.empty() ? "" : errors.front());
}

INSTANTIATE_TEST_SUITE_P(
    AllSeven, PaperBenchmarkScheduleTest,
    ::testing::Combine(::testing::Range(0, 7),
                       ::testing::Values(BindingPolicy::kDcsa,
                                         BindingPolicy::kBaseline)),
    [](const ::testing::TestParamInfo<PaperBenchmarkScheduleTest::ParamType>&
           info) {
      const int index = std::get<0>(info.param);
      const BindingPolicy policy = std::get<1>(info.param);
      return std::string(kNames[index]) +
             (policy == BindingPolicy::kDcsa ? "_dcsa" : "_ba");
    });

}  // namespace
}  // namespace fbmb
