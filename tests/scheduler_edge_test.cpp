// Scheduler edge cases: degenerate parameters, extreme shapes, and
// determinism under ties.

#include <gtest/gtest.h>

#include "bench_suite/synthetic.hpp"
#include "graph/graph_builder.hpp"
#include "schedule/list_scheduler.hpp"
#include "schedule/reference_scheduler.hpp"
#include "schedule/validator.hpp"

namespace fbmb {
namespace {

void expect_valid(const GraphBuilder& b, const AllocationSpec& spec,
                  const Schedule& s) {
  const auto errors =
      validate_schedule(s, b.graph(), Allocation(spec), b.wash_model());
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
}

/// Asserts SchedulerCore agrees bit-for-bit with the frozen reference on
/// this input, then returns the (core) schedule for further assertions.
Schedule schedule_checked(const GraphBuilder& b, const AllocationSpec& spec,
                          const SchedulerOptions& opts = {}) {
  const Allocation alloc(spec);
  const Schedule core =
      schedule_bioassay(b.graph(), alloc, b.wash_model(), opts);
  const Schedule ref =
      schedule_bioassay_reference(b.graph(), alloc, b.wash_model(), opts);
  EXPECT_TRUE(identical_schedules(core, ref))
      << "core diverged from reference:\n"
      << core.to_string(b.graph()) << ref.to_string(b.graph());
  return core;
}

TEST(SchedulerEdge, ZeroTransportTime) {
  GraphBuilder b;
  const auto a = b.mix("a", 3, 2.0);
  const auto d = b.detect("d", 2, 0.2);
  b.dep(a, d);
  SchedulerOptions opts;
  opts.transport_time = 0.0;
  const auto s = schedule_bioassay(b.graph(), Allocation({1, 0, 0, 1}),
                                   b.wash_model(), opts);
  EXPECT_DOUBLE_EQ(s.at(d).start, 3.0);  // instantaneous transport
  expect_valid(b, {1, 0, 0, 1}, s);
}

TEST(SchedulerEdge, EnormousWashTimeSerializesComponent) {
  GraphBuilder b;
  const auto a = b.mix("a", 1, 500.0);
  const auto c = b.mix("c", 1, 0.2);  // independent, same single mixer
  const auto da = b.detect("da", 1, 0.2);
  const auto dc = b.detect("dc", 1, 0.2);
  b.dep(a, da);
  b.dep(c, dc);
  const auto s =
      schedule_bioassay(b.graph(), Allocation({1, 0, 0, 2}), b.wash_model());
  // Whichever mix runs second waits out the first's wash.
  const double second_start =
      std::max(s.at(a).start, s.at(c).start);
  EXPECT_GT(second_start, 100.0);
  expect_valid(b, {1, 0, 0, 2}, s);
}

TEST(SchedulerEdge, WideFanInMixer) {
  // Our model allows k-ary dependency fan-in; all inputs must arrive.
  GraphBuilder b;
  std::vector<OperationId> leaves;
  for (int i = 0; i < 6; ++i) {
    leaves.push_back(b.mix("leaf" + std::to_string(i), 2 + i, 0.2));
  }
  const auto sink = b.mix("sink", 3, 0.2);
  for (const auto leaf : leaves) b.dep(leaf, sink);
  const auto s =
      schedule_bioassay(b.graph(), Allocation({3, 0, 0, 0}), b.wash_model());
  for (const auto leaf : leaves) {
    EXPECT_GE(s.at(sink).start, s.at(leaf).end);
  }
  expect_valid(b, {3, 0, 0, 0}, s);
}

TEST(SchedulerEdge, DeepChainAlternatingTypes) {
  GraphBuilder b;
  OperationId prev = b.mix("n0", 1, 0.2);
  for (int i = 1; i < 20; ++i) {
    const OperationId next =
        i % 2 == 0 ? b.mix("n" + std::to_string(i), 1, 0.2)
                   : b.heat("n" + std::to_string(i), 1, 0.2);
    b.dep(prev, next);
    prev = next;
  }
  const auto s =
      schedule_bioassay(b.graph(), Allocation({1, 1, 0, 0}), b.wash_model());
  // Every hand-off alternates components: 19 transports, each t_c.
  EXPECT_EQ(s.transports.size(), 19u);
  EXPECT_DOUBLE_EQ(s.completion_time, 20.0 * 1.0 + 19.0 * 2.0);
  expect_valid(b, {1, 1, 0, 0}, s);
}

TEST(SchedulerEdge, ManyIndependentOpsOnOneComponent) {
  GraphBuilder b;
  for (int i = 0; i < 12; ++i) {
    b.mix("m" + std::to_string(i), 2, 0.5);
  }
  const auto s =
      schedule_bioassay(b.graph(), Allocation({1, 0, 0, 0}), b.wash_model());
  // Serial execution with a wash between every pair: 12*2 + 11*0.5.
  EXPECT_DOUBLE_EQ(s.completion_time, 24.0 + 5.5);
  EXPECT_EQ(s.component_washes.size(), 11u);
  expect_valid(b, {1, 0, 0, 0}, s);
}

TEST(SchedulerEdge, EqualPrioritiesDeterministicOrder) {
  // 4 identical independent ops on 2 mixers: ties broken by id, twice.
  GraphBuilder b;
  for (int i = 0; i < 4; ++i) b.mix("m" + std::to_string(i), 3, 0.2);
  const Allocation alloc(AllocationSpec{2, 0, 0, 0});
  const auto s1 = schedule_bioassay(b.graph(), alloc, b.wash_model());
  const auto s2 = schedule_bioassay(b.graph(), alloc, b.wash_model());
  for (std::size_t i = 0; i < s1.operations.size(); ++i) {
    EXPECT_EQ(s1.operations[i].component, s2.operations[i].component);
    EXPECT_DOUBLE_EQ(s1.operations[i].start, s2.operations[i].start);
  }
  // Lower ids land first: m0, m1 start at 0 on c0/c1.
  EXPECT_DOUBLE_EQ(s1.at(OperationId{0}).start, 0.0);
  EXPECT_DOUBLE_EQ(s1.at(OperationId{1}).start, 0.0);
}

TEST(SchedulerEdge, SingleSourceMassiveFanOut) {
  GraphBuilder b;
  const auto root = b.mix("root", 2, 4.0);
  for (int i = 0; i < 10; ++i) {
    const auto leaf = b.detect("d" + std::to_string(i), 1, 0.2);
    b.dep(root, leaf);
  }
  const auto s =
      schedule_bioassay(b.graph(), Allocation({1, 0, 0, 2}), b.wash_model());
  // 10 shares of out(root) all transported; none in place (type differs).
  EXPECT_EQ(s.transports.size(), 10u);
  expect_valid(b, {1, 0, 0, 2}, s);
}

TEST(SchedulerEdge, FractionalDurationsAndWashes) {
  GraphBuilder b;
  const auto a = b.mix("a", 0.25, 0.3);
  const auto c = b.mix("c", 1.75, 0.7);
  b.dep(a, c);
  const auto s =
      schedule_bioassay(b.graph(), Allocation({1, 0, 0, 0}), b.wash_model());
  EXPECT_DOUBLE_EQ(s.completion_time, 2.0);  // in place, no wash between
  expect_valid(b, {1, 0, 0, 0}, s);
}

TEST(SchedulerEdge, LargeSyntheticStaysValidAndFast) {
  SyntheticSpec spec;
  spec.operations = 300;
  spec.seed = 77;
  spec.allocation = {8, 4, 4, 4};
  const auto graph = generate_synthetic_graph(spec);
  const Allocation alloc(spec.allocation);
  const WashModel wash;
  const auto s = schedule_bioassay(graph, alloc, wash);
  const auto errors = validate_schedule(s, graph, alloc, wash);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
}

TEST(SchedulerEdge, SerialChainRunsFullyInPlaceUnderDcsa) {
  // A pure chain: the DCSA policy keeps the whole chain in one chamber
  // (12 s, zero transports); BA's earliest-ready rule ping-pongs to the
  // idle second mixer (it is "ready" at t=0) and pays transports — the
  // cleanest illustration of why Case I matters.
  GraphBuilder b;
  OperationId prev = b.mix("c0", 2, 1.0);
  for (int i = 1; i < 6; ++i) {
    const auto next = b.mix("c" + std::to_string(i), 2, 1.0);
    b.dep(prev, next);
    prev = next;
  }
  const Allocation alloc(AllocationSpec{2, 0, 0, 0});
  SchedulerOptions ba;
  ba.policy = BindingPolicy::kBaseline;
  const auto ours = schedule_bioassay(b.graph(), alloc, b.wash_model());
  const auto base = schedule_bioassay(b.graph(), alloc, b.wash_model(), ba);
  EXPECT_DOUBLE_EQ(ours.completion_time, 12.0);  // all in place
  EXPECT_TRUE(ours.transports.empty());
  EXPECT_GT(base.completion_time, ours.completion_time);
  EXPECT_FALSE(base.transports.empty());
}

TEST(SchedulerEdge, CaseOneTieBreakOnEqualDiffusion) {
  // Two same-type parents with EQUAL diffusion coefficients (equal wash
  // seconds), each resident in its own mixer when the child is bound:
  // Case I must tie-break to the smaller operation id, deterministically.
  GraphBuilder b;
  const auto p0 = b.mix("p0", 3, 2.0);
  const auto p1 = b.mix("p1", 3, 2.0);
  const auto child = b.mix("child", 2, 0.2);
  b.dep(p0, child);
  b.dep(p1, child);
  const auto s = schedule_checked(b, {2, 0, 0, 0});
  ASSERT_EQ(b.graph().operation(p0).output.diffusion_coefficient,
            b.graph().operation(p1).output.diffusion_coefficient);
  // p0 and p1 run concurrently on the two mixers; the child consumes the
  // lower-id parent's fluid in place and transports the other one.
  EXPECT_EQ(s.at(child).in_place_parent, p0);
  EXPECT_EQ(s.at(child).component, s.at(p0).component);
  ASSERT_EQ(s.transports.size(), 1u);
  EXPECT_EQ(s.transports[0].producer, p1);
  expect_valid(b, {2, 0, 0, 0}, s);
}

TEST(SchedulerEdge, CaseTwoTieBreakOnEqualReadyTime) {
  // Three equal independent mixes on two mixers: after m0/m1 occupy both
  // components, m2 sees two candidates with EQUAL t_ready (same end, same
  // wash) and Case II must keep the first qualified component (allocation
  // order), not the last probed.
  GraphBuilder b;
  const auto m0 = b.mix("m0", 3, 0.5);
  const auto m1 = b.mix("m1", 3, 0.5);
  const auto m2 = b.mix("m2", 3, 0.5);
  (void)m1;
  const auto s = schedule_checked(b, {2, 0, 0, 0});
  EXPECT_EQ(s.at(m2).component, s.at(m0).component);  // first component
  EXPECT_DOUBLE_EQ(s.at(m2).start, 3.5);              // t_ready = 3 + 0.5
  expect_valid(b, {2, 0, 0, 0}, s);
}

TEST(SchedulerEdge, OnlyQualifiedComponentBusyPastAllPeers) {
  // The single detector is held by a long-running detection until well
  // after every mixer peer has finished; each dependent detection must
  // wait out the residency AND the wash, not start at fluid arrival.
  GraphBuilder b;
  const auto slow = b.detect("slow", 50, 1.0);
  (void)slow;
  std::vector<OperationId> detects;
  for (int i = 0; i < 3; ++i) {
    const auto m = b.mix("m" + std::to_string(i), 2, 0.2);
    const auto d = b.detect("d" + std::to_string(i), 1, 0.2);
    b.dep(m, d);
    detects.push_back(d);
  }
  const auto s = schedule_checked(b, {1, 0, 0, 1});
  // All mixes end long before the detector frees up at 50 + wash(slow).
  for (int i = 0; i < 3; ++i) {
    EXPECT_LE(s.at(OperationId{1 + 2 * i}).end, 10.0);
  }
  for (const auto d : detects) {
    EXPECT_GE(s.at(d).start, 51.0);  // 50 s residency + 1 s wash
  }
  expect_valid(b, {1, 0, 0, 1}, s);
}

}  // namespace
}  // namespace fbmb
