// End-to-end invariant gate for the route–retime fixpoint.
//
// Three consistency guarantees that regressed (or could regress) with the
// incremental fixpoint rewrite:
//  - every (schedule, routing) pair a fixpoint returns — incremental or
//    reference, converged or capped — satisfies the routing and schedule
//    validators, and the full flow's result survives the discrete-event
//    chip simulator with matching ground-truth statistics;
//  - the capped-rounds path returns paths routed against the *final*
//    retimed schedule (the pre-fix code returned pre-retiming paths with a
//    post-retiming schedule, which validate_routing rejects);
//  - grid construction is timed as its own stage (stages.grid_build), not
//    folded into stages.route, and the stage breakdown accounts for the
//    flow's cpu_seconds.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "bench_suite/benchmarks.hpp"
#include "core/flow_core.hpp"
#include "core/synthesis.hpp"
#include "place/constructive_placer.hpp"
#include "place/sa_placer.hpp"
#include "route/validator.hpp"
#include "runtime/result_io.hpp"
#include "runtime/telemetry.hpp"
#include "schedule/list_scheduler.hpp"
#include "schedule/validator.hpp"
#include "sim/chip_simulator.hpp"

namespace fbmb {
namespace {

struct Scenario {
  std::string label;
  Allocation alloc;
  Schedule schedule;
  ChipSpec chip;
  Placement placement;
  RouterOptions router;
};

Scenario prepare_dcsa(const Benchmark& bench) {
  Scenario s;
  s.label = bench.name + "/dcsa";
  s.alloc = Allocation(bench.allocation);
  SchedulerOptions sched;
  sched.policy = BindingPolicy::kDcsa;
  sched.refine_storage = true;
  s.schedule = schedule_bioassay(bench.graph, s.alloc, bench.wash, sched);
  s.chip = derive_grid(ChipSpec{}, allocation_area(s.alloc, 1));
  PlacerOptions placer;
  placer.restarts = 1;
  s.placement =
      place_components(s.alloc, s.schedule, bench.wash, s.chip, placer);
  return s;
}

Scenario prepare_baseline(const Benchmark& bench) {
  Scenario s;
  s.label = bench.name + "/baseline";
  s.alloc = Allocation(bench.allocation);
  SchedulerOptions sched;
  sched.policy = BindingPolicy::kBaseline;
  sched.refine_storage = false;
  s.schedule = schedule_bioassay(bench.graph, s.alloc, bench.wash, sched);
  s.chip = derive_grid(ChipSpec{}, allocation_area(s.alloc, 1));
  s.placement = place_components_baseline(s.alloc, s.schedule, s.chip,
                                          ConstructivePlacerOptions{});
  s.router.wash_aware_weights = false;
  return s;
}

void expect_valid(const Scenario& s, const Benchmark& bench,
                  const Schedule& schedule, const RoutingResult& routing) {
  const RoutingGrid fresh(s.chip, s.alloc, s.placement);
  for (const std::string& v :
       validate_routing(routing, schedule, fresh, bench.wash)) {
    ADD_FAILURE() << "routing invariant: " << v;
  }
  for (const std::string& v :
       validate_schedule(schedule, bench.graph, s.alloc, bench.wash)) {
    ADD_FAILURE() << "schedule invariant: " << v;
  }
}

/// Both fixpoints' outputs must pass the routing + schedule validators on
/// every benchmark and both presets.
TEST(FlowInvariants, FixpointOutputsValidate) {
  for (const auto& bench : paper_benchmarks()) {
    for (const Scenario& s :
         {prepare_dcsa(bench), prepare_baseline(bench)}) {
      SCOPED_TRACE(s.label);
      Schedule schedule = s.schedule;
      StageTimes stages;
      const RoutingResult routing = route_until_consistent(
          schedule, bench.graph, s.alloc, s.chip, s.placement, bench.wash,
          s.router, stages, {});
      expect_valid(s, bench, schedule, routing);

      Schedule ref_schedule = s.schedule;
      StageTimes ref_stages;
      const RoutingResult ref = route_until_consistent_reference(
          ref_schedule, bench.graph, s.alloc, s.chip, s.placement,
          bench.wash, s.router, ref_stages, {});
      expect_valid(s, bench, ref_schedule, ref);
    }
  }
}

void expect_simulates(const Benchmark& bench, const SynthesisResult& result) {
  const SimResult sim =
      simulate_chip(bench.graph, Allocation(bench.allocation), bench.wash,
                    result);
  for (const std::string& v : sim.violations) {
    ADD_FAILURE() << "simulation violation: " << v;
  }
  ASSERT_TRUE(sim.ok);
  // Ground-truth statistics from the event simulation must match the
  // metrics the flow reported — two independent code paths agreeing.
  EXPECT_NEAR(sim.stats.completion_time, result.completion_time, 1e-6);
  EXPECT_NEAR(sim.stats.channel_cache_time, result.total_cache_time, 1e-6);
  EXPECT_NEAR(sim.stats.component_wash_time,
              result.schedule.total_component_wash_time(), 1e-6);
  EXPECT_EQ(sim.stats.plugs_moved,
            static_cast<int>(result.schedule.transports.size()));
  EXPECT_EQ(sim.stats.washes_performed,
            static_cast<int>(result.schedule.component_washes.size()));
}

/// The full flows (which now run the incremental fixpoint) must produce
/// results the chip simulator executes cleanly, on every benchmark.
TEST(FlowInvariants, SynthesizedResultsSimulate) {
  for (const auto& bench : paper_benchmarks()) {
    SCOPED_TRACE(bench.name);
    SynthesisOptions options;
    options.placer.restarts = 1;
    expect_simulates(bench,
                     synthesize_dcsa(bench.graph, Allocation(bench.allocation),
                                     bench.wash, options));
    expect_simulates(bench, synthesize_baseline(bench.graph,
                                                Allocation(bench.allocation),
                                                bench.wash, options));
  }
}

/// Regression for the capped-rounds bug: with the round cap forced down to
/// one, the fixpoint hits the cap on a postponing configuration and must
/// still return paths consistent with the retimed schedule it returns.
/// The pre-fix code returned the pre-retiming paths (whose starts precede
/// the retimed departures), which validate_routing rejects.
TEST(FlowInvariants, CappedFixpointStaysConsistent) {
  const Benchmark bench = make_cpa();
  Scenario s = prepare_baseline(bench);
  s.router.max_fixpoint_rounds = 1;

  Schedule schedule = s.schedule;
  StageTimes stages;
  FlowStats flow;
  const RoutingResult routing = route_until_consistent(
      schedule, bench.graph, s.alloc, s.chip, s.placement, bench.wash,
      s.router, stages, {}, &flow);
  EXPECT_EQ(routing.stats.fixpoints_capped, 1u);
  // Cap at one round + one reconciliation round = two rounds recorded.
  EXPECT_EQ(flow.rounds, 2u);
  expect_valid(s, bench, schedule, routing);

  Schedule ref_schedule = s.schedule;
  StageTimes ref_stages;
  const RoutingResult ref = route_until_consistent_reference(
      ref_schedule, bench.graph, s.alloc, s.chip, s.placement, bench.wash,
      s.router, ref_stages, {});
  EXPECT_EQ(ref.stats.fixpoints_capped, 1u);
  expect_valid(s, bench, ref_schedule, ref);

  // The capped paths of the two fixpoints stay bit-identical too.
  EXPECT_TRUE(identical_schedules(schedule, ref_schedule));
  EXPECT_TRUE(identical_routing(routing, ref));
}

/// Grid construction must be timed as its own stage and the per-stage
/// breakdown must account for cpu_seconds: the stages are non-overlapping
/// sub-spans of the flow, so their sum is bounded by the total (plus timer
/// noise) and the unaccounted remainder stays small.
TEST(FlowInvariants, StageTimesAccountForCpuSeconds) {
  const Benchmark bench = make_cpa();
  SynthesisOptions options;
  options.placer.restarts = 1;
  const SynthesisResult result = synthesize_dcsa(
      bench.graph, Allocation(bench.allocation), bench.wash, options);
  const StageTimes& st = result.stage_seconds;
  EXPECT_GT(st.grid_build, 0.0);
  EXPECT_GT(st.route, 0.0);
  const double total = st.total();
  EXPECT_LE(total, result.cpu_seconds * 1.05 + 1e-3);
  const double unaccounted = result.cpu_seconds - total;
  EXPECT_LE(unaccounted, std::max(0.1, 0.5 * result.cpu_seconds))
      << "stage breakdown misses too much of cpu_seconds: total=" << total
      << " cpu=" << result.cpu_seconds;
}

/// The result-cache spill must round-trip the new counters, and spills
/// written before they existed must still load (with the counters zero).
TEST(FlowInvariants, SpillRoundTripsFlowCounters) {
  const Benchmark bench = make_pcr();
  SynthesisOptions options;
  options.placer.restarts = 1;
  options.router.max_fixpoint_rounds = 1;  // exercise fixpoints_capped too
  const SynthesisResult result = synthesize_baseline(
      bench.graph, Allocation(bench.allocation), bench.wash, options);

  const std::string json = synthesis_result_to_json(result);
  const auto parsed = synthesis_result_from_json(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->flow_stats.rounds, result.flow_stats.rounds);
  EXPECT_EQ(parsed->flow_stats.transports_rerouted,
            result.flow_stats.transports_rerouted);
  EXPECT_EQ(parsed->flow_stats.transports_reused,
            result.flow_stats.transports_reused);
  EXPECT_EQ(parsed->flow_stats.cells_evicted,
            result.flow_stats.cells_evicted);
  EXPECT_EQ(parsed->routing.stats.fixpoints_capped,
            result.routing.stats.fixpoints_capped);
  EXPECT_EQ(parsed->stage_seconds.grid_build, result.stage_seconds.grid_build);

  // Legacy spill: strip the keys this change introduced and re-parse.
  std::string legacy = json;
  const auto fs = legacy.find("\"flow_stats\"");
  ASSERT_NE(fs, std::string::npos);
  const auto fs_end = legacy.find("}", fs);
  ASSERT_NE(fs_end, std::string::npos);
  legacy.erase(fs, fs_end - fs + 3);  // drops `"flow_stats": {...}, `
  const auto cap = legacy.find(", \"fixpoints_capped\"");
  ASSERT_NE(cap, std::string::npos);
  legacy.erase(cap, legacy.find("}", cap) - cap);
  const auto gb = legacy.find(", \"grid_build\"");
  ASSERT_NE(gb, std::string::npos);
  legacy.erase(gb, legacy.find(",", gb + 2) - gb);

  const auto old = synthesis_result_from_json(legacy);
  ASSERT_TRUE(old.has_value()) << "legacy spill without the new keys must load";
  EXPECT_EQ(old->flow_stats.rounds, 0u);
  EXPECT_EQ(old->routing.stats.fixpoints_capped, 0u);
  EXPECT_EQ(old->stage_seconds.grid_build, 0.0);
  EXPECT_TRUE(identical_schedules(old->schedule, result.schedule));
}

/// Telemetry must aggregate and emit the new counters.
TEST(FlowInvariants, TelemetryCarriesFlowCounters) {
  Telemetry telemetry;
  FlowStats flow;
  flow.rounds = 3;
  flow.transports_rerouted = 40;
  flow.transports_reused = 20;
  flow.cells_evicted = 7;
  telemetry.record_flow_stats(flow);
  telemetry.record_flow_stats(flow);
  RouteStats route;
  route.fixpoints_capped = 1;
  telemetry.record_route_stats(route);
  StageTimes stages;
  stages.grid_build = 0.25;
  telemetry.record_stage_times(stages);

  const Telemetry::Snapshot snap = telemetry.snapshot();
  EXPECT_EQ(snap.flow.rounds, 6u);
  EXPECT_EQ(snap.flow.transports_rerouted, 80u);
  EXPECT_EQ(snap.flow.transports_reused, 40u);
  EXPECT_EQ(snap.flow.cells_evicted, 14u);
  EXPECT_EQ(snap.routing.fixpoints_capped, 1u);
  EXPECT_DOUBLE_EQ(snap.stage_seconds.grid_build, 0.25);

  const std::string json = Telemetry::to_json(snap);
  EXPECT_NE(json.find("\"flow\": {\"rounds\": 6"), std::string::npos);
  EXPECT_NE(json.find("\"fixpoints_capped\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"grid_build\": 0.25"), std::string::npos);

  telemetry.reset();
  EXPECT_EQ(telemetry.snapshot().flow.rounds, 0u);
  EXPECT_EQ(telemetry.snapshot().routing.fixpoints_capped, 0u);
}

}  // namespace
}  // namespace fbmb
