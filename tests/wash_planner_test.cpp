#include "route/wash_planner.hpp"

#include <gtest/gtest.h>

#include "bench_suite/benchmarks.hpp"
#include "core/synthesis.hpp"
#include "route/router.hpp"

namespace fbmb {
namespace {

struct Fixture {
  Allocation alloc{AllocationSpec{2, 0, 0, 0}};
  ChipSpec chip;
  Placement placement{2};
  WashModel wash;

  Fixture() {
    chip.grid_width = 20;
    chip.grid_height = 20;
    placement.at(ComponentId{0}) = {{2, 8}, false};
    placement.at(ComponentId{1}) = {{14, 8}, false};
  }

  static TransportTask transport(int id, int from, int to, double dep,
                                 double consume, const Fluid& fluid) {
    TransportTask t;
    t.id = id;
    t.producer = OperationId{id};
    t.consumer = OperationId{id + 100};
    t.from = ComponentId{from};
    t.to = ComponentId{to};
    t.fluid = fluid;
    t.departure = dep;
    t.transport_time = 2.0;
    t.consume = consume;
    return t;
  }
};

TEST(WashPlanner, NoWashesNoFlushes) {
  Fixture fx;
  RoutingGrid grid(fx.chip, fx.alloc, fx.placement);
  Schedule s;
  s.transports = {Fixture::transport(0, 0, 1, 0.0, 2.0, Fluid{"f", 1e-5})};
  const auto routing = route_transports(grid, s, fx.wash);
  RoutingGrid fresh(fx.chip, fx.alloc, fx.placement);
  const auto plan = plan_wash_pathways(fresh, routing, s, fx.wash);
  EXPECT_TRUE(plan.flushes.empty());
  EXPECT_EQ(plan.infeasible_count, 0);
}

TEST(WashPlanner, FlushPlannedForForeignResidue) {
  Fixture fx;
  RoutingGrid grid(fx.chip, fx.alloc, fx.placement);
  Schedule s;
  s.transports = {
      Fixture::transport(0, 0, 1, 0.0, 2.0, Fluid{"cells", 5e-8}),
      Fixture::transport(1, 0, 1, 20.0, 22.0, Fluid{"buffer", 1e-5})};
  RouterOptions opts;
  opts.wash_aware_weights = false;  // deterministic same shortest path
  const auto routing = route_transports(grid, s, fx.wash, opts);
  ASSERT_EQ(routing.paths.size(), 2u);
  ASSERT_GT(routing.paths[1].wash_duration, 0.0);

  RoutingGrid fresh(fx.chip, fx.alloc, fx.placement);
  const auto plan = plan_wash_pathways(fresh, routing, s, fx.wash);
  ASSERT_EQ(plan.flushes.size(), 1u);
  const auto& flush = plan.flushes[0];
  EXPECT_TRUE(flush.feasible);
  EXPECT_EQ(flush.transport_id, 1);
  // Pathway runs inlet -> washed path -> outlet.
  EXPECT_EQ(flush.cells.front(), plan.inlet);
  EXPECT_EQ(flush.cells.back(), plan.outlet);
  // Window matches the router's booking: [start - wash, start).
  EXPECT_DOUBLE_EQ(flush.end, routing.paths[1].start);
  EXPECT_DOUBLE_EQ(flush.end - flush.start,
                   routing.paths[1].wash_duration);
  // Covers every cell of the washed path.
  for (const Point& p : routing.paths[1].cells) {
    EXPECT_NE(std::find(flush.cells.begin(), flush.cells.end(), p),
              flush.cells.end());
  }
}

TEST(WashPlanner, PathwayIsConnected) {
  Fixture fx;
  RoutingGrid grid(fx.chip, fx.alloc, fx.placement);
  Schedule s;
  s.transports = {
      Fixture::transport(0, 0, 1, 0.0, 2.0, Fluid{"cells", 5e-8}),
      Fixture::transport(1, 1, 0, 30.0, 32.0, Fluid{"buffer", 1e-5})};
  RouterOptions opts;
  opts.wash_aware_weights = false;
  const auto routing = route_transports(grid, s, fx.wash, opts);
  RoutingGrid fresh(fx.chip, fx.alloc, fx.placement);
  const auto plan = plan_wash_pathways(fresh, routing, s, fx.wash);
  for (const auto& flush : plan.flushes) {
    if (!flush.feasible) continue;
    for (std::size_t i = 1; i < flush.cells.size(); ++i) {
      EXPECT_EQ(manhattan_distance(flush.cells[i - 1], flush.cells[i]), 1);
      EXPECT_FALSE(fresh.blocked(flush.cells[i]));
    }
  }
}

TEST(WashPlanner, ExplicitPorts) {
  Fixture fx;
  RoutingGrid grid(fx.chip, fx.alloc, fx.placement);
  Schedule s;
  s.transports = {
      Fixture::transport(0, 0, 1, 0.0, 2.0, Fluid{"cells", 5e-8}),
      Fixture::transport(1, 0, 1, 20.0, 22.0, Fluid{"buffer", 1e-5})};
  RouterOptions opts;
  opts.wash_aware_weights = false;
  const auto routing = route_transports(grid, s, fx.wash, opts);
  RoutingGrid fresh(fx.chip, fx.alloc, fx.placement);
  WashPlanOptions wopts;
  wopts.inlet = {0, 19};
  wopts.outlet = {19, 0};
  const auto plan = plan_wash_pathways(fresh, routing, s, fx.wash, wopts);
  EXPECT_EQ(plan.inlet, (Point{0, 19}));
  EXPECT_EQ(plan.outlet, (Point{19, 0}));
  ASSERT_FALSE(plan.flushes.empty());
  EXPECT_TRUE(plan.flushes[0].feasible);
}

TEST(WashPlanner, ReplayIncludesWashLead) {
  // Regression: the occupancy replay used to book each path as
  // [path.start, end), omitting the wash prefix [start - wash, start) the
  // router actually reserves. A flush window overlapping only another
  // task's wash lead was then declared conflict_free. The replay must
  // re-derive per-cell washes from simulated residues, like the validator.
  Fixture fx;
  RoutingGrid fresh(fx.chip, fx.alloc, fx.placement);

  const Fluid g{"g", 2e-6};
  const Fluid f{"f", 1e-5};
  const Fluid h{"h", 1e-5};
  fx.wash.set_override(g.diffusion_coefficient, 2.0);

  Schedule s;
  s.transports = {Fixture::transport(0, 0, 1, 0.0, 3.0, g),
                  Fixture::transport(1, 0, 1, 11.0, 13.0, f),
                  Fixture::transport(2, 0, 1, 10.0, 12.0, h)};

  RoutingResult routing;
  // Task 0 leaves residue g on (8,2) and (9,2).
  RoutedPath p0;
  p0.transport_id = 0;
  p0.cells = {{8, 2}, {9, 2}};
  p0.start = 0.0;
  p0.transport_end = 3.0;
  p0.cache_until = 3.0;
  // Task 1 crosses the g residue at (8,2): the router booked
  // [11 - wash(g), 13) = [9, 13) there. Its wash_duration field is left 0
  // so the planner does not flush it — the replay must still recover the
  // 2 s lead from the simulated residues, not from this field.
  RoutedPath p1;
  p1.transport_id = 1;
  p1.cells = {{8, 2}, {8, 3}};
  p1.start = 11.0;
  p1.transport_end = 13.0;
  p1.cache_until = 13.0;
  // Task 2 is the flush under test: window [8, 10) on a corridor whose
  // exit leg passes (8,2).
  RoutedPath p2;
  p2.transport_id = 2;
  p2.cells = {{5, 2}, {6, 2}, {7, 2}};
  p2.start = 10.0;
  p2.transport_end = 12.0;
  p2.cache_until = 12.0;
  p2.wash_duration = 2.0;
  routing.paths = {p0, p1, p2};

  WashPlanOptions wopts;
  wopts.inlet = {4, 2};
  wopts.outlet = {8, 2};
  const auto plan = plan_wash_pathways(fresh, routing, s, fx.wash, wopts);
  ASSERT_EQ(plan.flushes.size(), 1u);
  const auto& flush = plan.flushes[0];
  ASSERT_TRUE(flush.feasible);
  EXPECT_DOUBLE_EQ(flush.start, 8.0);
  EXPECT_DOUBLE_EQ(flush.end, 10.0);
  // (8,2) carries [0,3) and — wash lead included — [9,13): the flush
  // window [8,10) collides. The pre-fix replay saw [11,13) and missed it.
  EXPECT_FALSE(flush.conflict_free);
  EXPECT_EQ(plan.conflicted_count, 1);
}

TEST(WashPlanner, FlushLengthAccounting) {
  WashPlan plan;
  WashPath a;
  a.feasible = true;
  a.cells = {{0, 0}, {1, 0}, {2, 0}};  // 2 segments
  WashPath b;
  b.feasible = false;
  b.cells = {};
  plan.flushes = {a, b};
  EXPECT_DOUBLE_EQ(plan.total_flush_length_mm(10.0), 20.0);
}

TEST(WashPlanner, FullFlowsPlanFeasibleFlushes) {
  for (const auto& bench : paper_benchmarks()) {
    const Allocation alloc(bench.allocation);
    const auto result = synthesize_dcsa(bench.graph, alloc, bench.wash);
    RoutingGrid fresh(result.chip, alloc, result.placement);
    const auto plan =
        plan_wash_pathways(fresh, result.routing, result.schedule, bench.wash);
    EXPECT_EQ(plan.infeasible_count, 0)
        << bench.name << ": every flush should find a pathway";
    int with_wash = 0;
    for (const auto& path : result.routing.paths) {
      if (path.wash_duration > 0.0) ++with_wash;
    }
    EXPECT_EQ(static_cast<int>(plan.flushes.size()), with_wash)
        << bench.name;
  }
}

}  // namespace
}  // namespace fbmb
