#include "runtime/result_cache.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "bench_suite/benchmarks.hpp"
#include "runtime/fingerprint.hpp"
#include "runtime/result_io.hpp"

namespace fbmb {
namespace {

SynthesisResult tiny_result(double completion) {
  SynthesisResult result;
  result.completion_time = completion;
  result.utilization = 0.5;
  return result;
}

Fingerprint key_of(std::uint64_t lo, std::uint64_t hi) {
  return Fingerprint{lo, hi};
}

TEST(Fingerprint, EqualInputsHashEqual) {
  const auto bench = make_pcr();
  const Allocation alloc(bench.allocation);
  SynthesisOptions options;
  const Fingerprint a = fingerprint_inputs(bench.graph, alloc, bench.wash,
                                           options, FlowPreset::kDcsa);
  const Fingerprint b = fingerprint_inputs(bench.graph, alloc, bench.wash,
                                           options, FlowPreset::kDcsa);
  EXPECT_EQ(a, b);
}

TEST(Fingerprint, EveryInputFieldChangesTheHash) {
  const auto bench = make_pcr();
  const Allocation alloc(bench.allocation);
  SynthesisOptions options;
  const Fingerprint base = fingerprint_inputs(bench.graph, alloc, bench.wash,
                                              options, FlowPreset::kDcsa);

  EXPECT_NE(base, fingerprint_inputs(bench.graph, alloc, bench.wash, options,
                                     FlowPreset::kBaseline));

  SynthesisOptions seed = options;
  seed.placer.seed = 2;
  EXPECT_NE(base, fingerprint_inputs(bench.graph, alloc, bench.wash, seed,
                                     FlowPreset::kDcsa));

  SynthesisOptions restarts = options;
  restarts.placer.restarts = 5;
  EXPECT_NE(base, fingerprint_inputs(bench.graph, alloc, bench.wash,
                                     restarts, FlowPreset::kDcsa));

  SynthesisOptions tc = options;
  tc.scheduler.transport_time = 4.0;
  EXPECT_NE(base, fingerprint_inputs(bench.graph, alloc, bench.wash, tc,
                                     FlowPreset::kDcsa));

  WashModel wash = bench.wash;
  wash.set_override(1e-5, 3.0);
  EXPECT_NE(base, fingerprint_inputs(bench.graph, alloc, wash, options,
                                     FlowPreset::kDcsa));

  const Allocation bigger(AllocationSpec{4, 0, 0, 0});
  EXPECT_NE(base, fingerprint_inputs(bench.graph, bigger, bench.wash,
                                     options, FlowPreset::kDcsa));

  const auto other = make_ivd();
  EXPECT_NE(base, fingerprint_inputs(other.graph, alloc, bench.wash, options,
                                     FlowPreset::kDcsa));
}

TEST(Fingerprint, ExecutorHookIsNotPartOfTheKey) {
  const auto bench = make_pcr();
  const Allocation alloc(bench.allocation);
  SynthesisOptions options;
  const Fingerprint base = fingerprint_inputs(bench.graph, alloc, bench.wash,
                                              options, FlowPreset::kDcsa);
  SynthesisOptions with_executor = options;
  with_executor.placer.restart_executor =
      [](std::vector<std::function<void()>>& tasks) {
        for (auto& task : tasks) task();
      };
  EXPECT_EQ(base, fingerprint_inputs(bench.graph, alloc, bench.wash,
                                     with_executor, FlowPreset::kDcsa));
}

TEST(Fingerprint, HexRoundTrip) {
  const Fingerprint fp{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  const std::string hex = fp.to_hex();
  EXPECT_EQ(hex.size(), 32u);
  Fingerprint parsed;
  ASSERT_TRUE(Fingerprint::from_hex(hex, parsed));
  EXPECT_EQ(parsed, fp);
  EXPECT_FALSE(Fingerprint::from_hex("zz", parsed));
}

TEST(ResultCache, HitMissAndCounters) {
  ResultCache cache(4);
  const Fingerprint key = key_of(1, 1);
  EXPECT_FALSE(cache.lookup(key).has_value());
  EXPECT_EQ(cache.misses(), 1u);
  cache.insert(key, tiny_result(10.0));
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->completion_time, 10.0);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ResultCache, DistinctKeysDoNotCollide) {
  // Keys differing in only one word must be distinct entries.
  ResultCache cache(8);
  cache.insert(key_of(1, 2), tiny_result(1.0));
  cache.insert(key_of(1, 3), tiny_result(2.0));
  cache.insert(key_of(2, 2), tiny_result(3.0));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_DOUBLE_EQ(cache.lookup(key_of(1, 2))->completion_time, 1.0);
  EXPECT_DOUBLE_EQ(cache.lookup(key_of(1, 3))->completion_time, 2.0);
  EXPECT_DOUBLE_EQ(cache.lookup(key_of(2, 2))->completion_time, 3.0);
}

TEST(ResultCache, LruEvictionPrefersStaleEntries) {
  ResultCache cache(2);
  cache.insert(key_of(1, 0), tiny_result(1.0));
  cache.insert(key_of(2, 0), tiny_result(2.0));
  // Touch key 1 so key 2 is now least recently used.
  EXPECT_TRUE(cache.lookup(key_of(1, 0)).has_value());
  cache.insert(key_of(3, 0), tiny_result(3.0));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(cache.lookup(key_of(1, 0)).has_value());
  EXPECT_FALSE(cache.lookup(key_of(2, 0)).has_value());
  EXPECT_TRUE(cache.lookup(key_of(3, 0)).has_value());
}

TEST(ResultCache, OverwriteSameKeyKeepsSizeStable) {
  ResultCache cache(2);
  cache.insert(key_of(1, 0), tiny_result(1.0));
  cache.insert(key_of(1, 0), tiny_result(9.0));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_DOUBLE_EQ(cache.lookup(key_of(1, 0))->completion_time, 9.0);
}

TEST(ResultCache, SpillRoundTripsFullResultLosslessly) {
  // A real synthesized result — schedule, placement, routing — must
  // survive the JSON spill bit-identically.
  const auto bench = make_pcr();
  const Allocation alloc(bench.allocation);
  const SynthesisResult original =
      synthesize_dcsa(bench.graph, alloc, bench.wash);

  SynthesisOptions options;
  const Fingerprint key = fingerprint_inputs(bench.graph, alloc, bench.wash,
                                             options, FlowPreset::kDcsa);
  ResultCache cache(4);
  cache.insert(key, original);

  const std::string path = ::testing::TempDir() + "msynth_cache_spill.json";
  ASSERT_TRUE(cache.save_json(path));

  ResultCache reloaded(4);
  EXPECT_EQ(reloaded.load_json(path), 1u);
  const auto restored = reloaded.lookup(key);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->completion_time, original.completion_time);
  EXPECT_EQ(restored->utilization, original.utilization);
  EXPECT_EQ(restored->channel_length_mm, original.channel_length_mm);
  EXPECT_EQ(restored->total_cache_time, original.total_cache_time);
  EXPECT_EQ(restored->channel_wash_time, original.channel_wash_time);
  EXPECT_EQ(restored->schedule.operations.size(),
            original.schedule.operations.size());
  EXPECT_EQ(restored->schedule.transports.size(),
            original.schedule.transports.size());
  EXPECT_EQ(restored->placement.size(), original.placement.size());
  ASSERT_EQ(restored->routing.paths.size(), original.routing.paths.size());
  for (std::size_t i = 0; i < original.routing.paths.size(); ++i) {
    EXPECT_EQ(restored->routing.paths[i].cells,
              original.routing.paths[i].cells) << "path " << i;
  }
  EXPECT_EQ(restored->routing.distinct_channel_edges(),
            original.routing.distinct_channel_edges());
  // The SA placer's search counters ride along in the spill.
  EXPECT_GT(original.place_stats.proposals, 0u);
  EXPECT_EQ(restored->place_stats.proposals, original.place_stats.proposals);
  EXPECT_EQ(restored->place_stats.accepts, original.place_stats.accepts);
  EXPECT_EQ(restored->place_stats.delta_evals,
            original.place_stats.delta_evals);
  EXPECT_EQ(restored->place_stats.full_evals,
            original.place_stats.full_evals);
  EXPECT_EQ(restored->place_stats.occupancy_probes,
            original.place_stats.occupancy_probes);
  // ... and so do the scheduler's.
  EXPECT_EQ(original.sched_stats.ops_scheduled,
            bench.graph.operation_count());
  EXPECT_EQ(restored->sched_stats.ops_scheduled,
            original.sched_stats.ops_scheduled);
  EXPECT_EQ(restored->sched_stats.binding_probes,
            original.sched_stats.binding_probes);
  EXPECT_EQ(restored->sched_stats.case1_bindings,
            original.sched_stats.case1_bindings);
  std::remove(path.c_str());
}

TEST(ResultIo, SchedStatsRoundTripAndBackwardCompat) {
  SynthesisResult result = tiny_result(42.0);
  result.sched_stats.ops_scheduled = 55;
  result.sched_stats.heap_pushes = 55;
  result.sched_stats.heap_pops = 55;
  result.sched_stats.binding_probes = 80;
  result.sched_stats.case1_bindings = 39;
  result.sched_stats.case2_bindings = 16;

  const std::string json = synthesis_result_to_json(result);
  EXPECT_NE(json.find("\"sched_stats\""), std::string::npos);
  const auto back = synthesis_result_from_json(json);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->sched_stats.ops_scheduled, 55u);
  EXPECT_EQ(back->sched_stats.heap_pushes, 55u);
  EXPECT_EQ(back->sched_stats.heap_pops, 55u);
  EXPECT_EQ(back->sched_stats.binding_probes, 80u);
  EXPECT_EQ(back->sched_stats.case1_bindings, 39u);
  EXPECT_EQ(back->sched_stats.case2_bindings, 16u);

  // Spills written before the counters existed have no "sched_stats" key;
  // they must still load, with the counters defaulting to zero.
  SynthesisResult plain = tiny_result(7.0);
  std::string legacy = synthesis_result_to_json(plain);
  const std::size_t at = legacy.find("\"sched_stats\"");
  ASSERT_NE(at, std::string::npos);
  const std::size_t end = legacy.find("}", at);
  ASSERT_NE(end, std::string::npos);
  legacy.erase(at, end - at + 3);
  ASSERT_EQ(legacy.find("sched_stats"), std::string::npos);
  const auto old = synthesis_result_from_json(legacy);
  ASSERT_TRUE(old.has_value());
  EXPECT_EQ(old->completion_time, 7.0);
  EXPECT_EQ(old->sched_stats.ops_scheduled, 0u);
  EXPECT_EQ(old->sched_stats.heap_pushes, 0u);
  EXPECT_EQ(old->sched_stats.heap_pops, 0u);
  EXPECT_EQ(old->sched_stats.binding_probes, 0u);
  EXPECT_EQ(old->sched_stats.case1_bindings, 0u);
  EXPECT_EQ(old->sched_stats.case2_bindings, 0u);
}

TEST(ResultIo, PlaceStatsRoundTripAndBackwardCompat) {
  SynthesisResult result = tiny_result(42.0);
  result.place_stats.proposals = 13200;
  result.place_stats.accepts = 5607;
  result.place_stats.delta_evals = 8001;
  result.place_stats.full_evals = 2;
  result.place_stats.occupancy_probes = 15433;

  const std::string json = synthesis_result_to_json(result);
  EXPECT_NE(json.find("\"place_stats\""), std::string::npos);
  const auto back = synthesis_result_from_json(json);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->place_stats.proposals, 13200u);
  EXPECT_EQ(back->place_stats.accepts, 5607u);
  EXPECT_EQ(back->place_stats.delta_evals, 8001u);
  EXPECT_EQ(back->place_stats.full_evals, 2u);
  EXPECT_EQ(back->place_stats.occupancy_probes, 15433u);

  // Spills written before the counters existed have no "place_stats" key;
  // they must still load, with the counters defaulting to zero.
  SynthesisResult plain = tiny_result(7.0);
  std::string legacy = synthesis_result_to_json(plain);
  const std::size_t at = legacy.find("\"place_stats\"");
  ASSERT_NE(at, std::string::npos);
  const std::size_t end = legacy.find("}", at);
  ASSERT_NE(end, std::string::npos);
  // Remove `"place_stats": {...}, ` — the key through its closing brace
  // plus the trailing comma-space separator.
  legacy.erase(at, end - at + 3);
  ASSERT_EQ(legacy.find("place_stats"), std::string::npos);
  const auto old = synthesis_result_from_json(legacy);
  ASSERT_TRUE(old.has_value());
  EXPECT_EQ(old->completion_time, 7.0);
  EXPECT_EQ(old->place_stats.proposals, 0u);
  EXPECT_EQ(old->place_stats.accepts, 0u);
  EXPECT_EQ(old->place_stats.delta_evals, 0u);
  EXPECT_EQ(old->place_stats.full_evals, 0u);
  EXPECT_EQ(old->place_stats.occupancy_probes, 0u);
}

TEST(ResultCache, LoadRejectsMalformedFiles) {
  const std::string path = ::testing::TempDir() + "msynth_cache_bad.json";
  {
    FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"format\": \"something else\"}", f);
    std::fclose(f);
  }
  ResultCache cache(4);
  EXPECT_EQ(cache.load_json(path), 0u);
  EXPECT_EQ(cache.load_json("/nonexistent/msynth.json"), 0u);
  std::remove(path.c_str());
}

TEST(ResultIo, ParserHandlesDocumentShapes) {
  const auto parsed = jsonio::parse(
      "{\"a\": [1, 2.5, -3e2], \"b\": {\"c\": true, \"d\": null}, "
      "\"s\": \"x\\ny\"}");
  ASSERT_TRUE(parsed.has_value());
  const jsonio::Value* a = parsed->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array[2].num, -300.0);
  const jsonio::Value* b = parsed->find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b->find("c")->b);
  EXPECT_EQ(parsed->find("s")->str, "x\ny");
  EXPECT_FALSE(jsonio::parse("{\"unterminated\": ").has_value());
  EXPECT_FALSE(jsonio::parse("{} trailing").has_value());
}

}  // namespace
}  // namespace fbmb
