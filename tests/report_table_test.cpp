#include "report/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace fbmb {
namespace {

TEST(TextTable, BasicRendering) {
  TextTable table({"Name", "Value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("Name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TextTable, DefaultAlignmentLeftFirstColumn) {
  TextTable table({"Name", "Value"});
  table.add_row({"x", "1"});
  const std::string out = table.to_string();
  // First column left-aligned: "x" appears at the start of its row.
  std::istringstream is(out);
  std::string header, rule, row;
  std::getline(is, header);
  std::getline(is, rule);
  std::getline(is, row);
  EXPECT_EQ(row.find('x'), 0u);
  // Second column right-aligned: "1" ends the row.
  EXPECT_EQ(row.back(), '1');
}

TEST(TextTable, ShortRowsPadded) {
  TextTable table({"A", "B", "C"});
  table.add_row({"only"});
  EXPECT_NO_THROW(table.to_string());
}

TEST(TextTable, TooManyCellsThrow) {
  TextTable table({"A"});
  EXPECT_THROW(table.add_row({"1", "2"}), std::invalid_argument);
}

TEST(TextTable, AlignmentSizeMismatchThrows) {
  EXPECT_THROW(TextTable({"A", "B"}, {Align::kLeft}), std::invalid_argument);
}

TEST(TextTable, CsvOutput) {
  TextTable table({"Benchmark", "Ours", "BA"});
  table.add_row({"PCR", "30", "30"});
  const std::string csv = table.to_csv();
  EXPECT_EQ(csv, "Benchmark,Ours,BA\nPCR,30,30\n");
}

TEST(TextTable, StreamOperator) {
  TextTable table({"A"});
  table.add_row({"1"});
  std::ostringstream os;
  os << table;
  EXPECT_EQ(os.str(), table.to_string());
}

TEST(CsvEscape, QuotesWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("has,comma"), "\"has,comma\"");
  EXPECT_EQ(csv_escape("has\"quote"), "\"has\"\"quote\"");
  EXPECT_EQ(csv_escape("multi\nline"), "\"multi\nline\"");
}

TEST(TextTable, ColumnsWidenToContent) {
  TextTable table({"H"});
  table.add_row({"very-long-content"});
  std::istringstream is(table.to_string());
  std::string header;
  std::getline(is, header);
  EXPECT_GE(header.size(), std::string("very-long-content").size());
}

}  // namespace
}  // namespace fbmb
