#include "schedule/optimal_scheduler.hpp"

#include <gtest/gtest.h>

#include "bench_suite/synthetic.hpp"
#include "graph/graph_builder.hpp"
#include "schedule/validator.hpp"

namespace fbmb {
namespace {

constexpr double kEps = 1e-9;

TEST(ReplaySchedule, MatchesEngineOnForcedHeuristicDecisions) {
  GraphBuilder b;
  const auto o1 = b.mix("o1", 5, 6.0);
  const auto o2 = b.mix("o2", 5, 2.0);
  const auto o3 = b.mix("o3", 4, 2.0);
  b.dep(o1, o3);
  b.dep(o2, o3);
  const Allocation alloc(AllocationSpec{3, 0, 0, 0});
  const auto heuristic = schedule_bioassay(b.graph(), alloc, b.wash_model());
  // Replaying the heuristic's own decisions must reproduce it exactly.
  std::vector<ScheduleDecision> decisions;
  std::vector<ScheduledOperation> by_start = heuristic.operations;
  std::sort(by_start.begin(), by_start.end(),
            [](const auto& a, const auto& b2) {
              return a.start != b2.start ? a.start < b2.start
                                         : a.op.value < b2.op.value;
            });
  for (const auto& so : by_start) decisions.push_back({so.op, so.component});
  const auto replayed = replay_schedule(b.graph(), alloc, b.wash_model(),
                                        SchedulerOptions{}, decisions);
  EXPECT_NEAR(replayed.completion_time, heuristic.completion_time, kEps);
  for (const auto& so : heuristic.operations) {
    EXPECT_EQ(replayed.at(so.op).component, so.component);
    EXPECT_NEAR(replayed.at(so.op).start, so.start, kEps);
  }
  (void)o1; (void)o2; (void)o3;
}

TEST(ReplaySchedule, InPlaceDerivedFromForcedBinding) {
  GraphBuilder b;
  const auto a = b.mix("a", 3, 2.0);
  const auto c = b.mix("c", 4, 2.0);
  b.dep(a, c);
  const Allocation alloc(AllocationSpec{2, 0, 0, 0});
  const auto s = replay_schedule(
      b.graph(), alloc, b.wash_model(), {},
      {{a, ComponentId{0}}, {c, ComponentId{0}}});
  EXPECT_EQ(s.at(c).in_place_parent, a);
  EXPECT_DOUBLE_EQ(s.at(c).start, 3.0);  // no transport
  const auto s2 = replay_schedule(
      b.graph(), alloc, b.wash_model(), {},
      {{a, ComponentId{0}}, {c, ComponentId{1}}});
  EXPECT_FALSE(s2.at(c).consumed_in_place());
  EXPECT_DOUBLE_EQ(s2.at(c).start, 5.0);  // + t_c
}

TEST(ReplaySchedule, PartialPrefixAllowed) {
  GraphBuilder b;
  const auto a = b.mix("a", 3, 2.0);
  const auto c = b.mix("c", 4, 2.0);
  b.dep(a, c);
  const Allocation alloc(AllocationSpec{1, 0, 0, 0});
  const auto s = replay_schedule(b.graph(), alloc, b.wash_model(), {},
                                 {{a, ComponentId{0}}});
  EXPECT_DOUBLE_EQ(s.completion_time, 3.0);
  EXPECT_FALSE(s.at(c).component.valid());
}

TEST(ReplaySchedule, RejectsInvalidDecisions) {
  GraphBuilder b;
  const auto a = b.mix("a", 3, 2.0);
  const auto c = b.detect("c", 4, 0.2);
  b.dep(a, c);
  const Allocation alloc(AllocationSpec{1, 0, 0, 1});
  // Child before parent.
  EXPECT_THROW(replay_schedule(b.graph(), alloc, b.wash_model(), {},
                               {{c, ComponentId{1}}}),
               SchedulingError);
  // Non-qualified component (detector op on mixer).
  EXPECT_THROW(replay_schedule(b.graph(), alloc, b.wash_model(), {},
                               {{a, ComponentId{0}}, {c, ComponentId{0}}}),
               SchedulingError);
  // Repeated op.
  EXPECT_THROW(replay_schedule(b.graph(), alloc, b.wash_model(), {},
                               {{a, ComponentId{0}}, {a, ComponentId{0}}}),
               SchedulingError);
}

TEST(OptimalScheduler, NeverWorseThanHeuristic) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    SyntheticSpec spec;
    spec.operations = 6;
    spec.seed = seed;
    spec.allocation = {2, 1, 1, 1};
    const auto graph = generate_synthetic_graph(spec);
    const Allocation alloc(spec.allocation);
    const WashModel wash;
    const auto heuristic = schedule_bioassay(graph, alloc, wash);
    const auto optimal = schedule_optimal(graph, alloc, wash);
    EXPECT_TRUE(optimal.exhaustive) << "seed " << seed;
    EXPECT_LE(optimal.schedule.completion_time,
              heuristic.completion_time + kEps)
        << "seed " << seed;
  }
}

TEST(OptimalScheduler, OptimalScheduleIsValid) {
  SyntheticSpec spec;
  spec.operations = 6;
  spec.seed = 9;
  spec.allocation = {2, 1, 1, 1};
  const auto graph = generate_synthetic_graph(spec);
  const Allocation alloc(spec.allocation);
  const WashModel wash;
  const auto optimal = schedule_optimal(graph, alloc, wash);
  const auto errors = validate_schedule(optimal.schedule, graph, alloc, wash);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
}

TEST(OptimalScheduler, FindsKnownOptimumOnContrivedCase) {
  // Two independent 10 s mixes + a combining mix on 2 mixers: optimum runs
  // the leaves in parallel (end 10), transports one output (+2), combine 5
  // -> 17 total (in place on one leaf mixer).
  GraphBuilder b;
  const auto l1 = b.mix("l1", 10, 0.2);
  const auto l2 = b.mix("l2", 10, 0.2);
  const auto c = b.mix("c", 5, 0.2);
  b.dep(l1, c);
  b.dep(l2, c);
  const Allocation alloc(AllocationSpec{2, 0, 0, 0});
  const auto optimal = schedule_optimal(b.graph(), alloc, b.wash_model());
  EXPECT_TRUE(optimal.exhaustive);
  EXPECT_NEAR(optimal.schedule.completion_time, 17.0, kEps);
  (void)l1; (void)l2; (void)c;
}

TEST(OptimalScheduler, HeuristicGapSmallOnTinySuite) {
  // Aggregate gap across a small randomized suite: the Algorithm-1
  // heuristic should be within ~15% of optimal on average.
  double heuristic_total = 0.0;
  double optimal_total = 0.0;
  for (std::uint64_t seed = 10; seed < 22; ++seed) {
    SyntheticSpec spec;
    spec.operations = 7;
    spec.seed = seed;
    spec.allocation = {2, 1, 1, 1};
    const auto graph = generate_synthetic_graph(spec);
    const Allocation alloc(spec.allocation);
    const WashModel wash;
    heuristic_total += schedule_bioassay(graph, alloc, wash).completion_time;
    optimal_total +=
        schedule_optimal(graph, alloc, wash).schedule.completion_time;
  }
  EXPECT_LE(heuristic_total, optimal_total * 1.15);
  EXPECT_GE(heuristic_total, optimal_total - kEps);
}

TEST(OptimalScheduler, NodeLimitReturnsBestEffort) {
  SyntheticSpec spec;
  spec.operations = 8;
  spec.seed = 5;
  spec.allocation = {3, 1, 1, 1};
  const auto graph = generate_synthetic_graph(spec);
  const Allocation alloc(spec.allocation);
  const WashModel wash;
  const auto limited = schedule_optimal(graph, alloc, wash, {}, 50);
  EXPECT_FALSE(limited.exhaustive);
  // Still returns a complete, valid schedule (at worst the heuristic's).
  const auto errors =
      validate_schedule(limited.schedule, graph, alloc, wash);
  EXPECT_TRUE(errors.empty());
}

}  // namespace
}  // namespace fbmb
