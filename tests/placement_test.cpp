#include "place/placement.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace fbmb {
namespace {

ChipSpec spec_16() {
  ChipSpec spec;
  spec.grid_width = 16;
  spec.grid_height = 16;
  return spec;
}

TEST(Placement, FootprintUnrotated) {
  const Allocation alloc(AllocationSpec{1, 0, 0, 0});  // mixer 4x3
  Placement p(alloc.size());
  p.at(ComponentId{0}) = {{2, 3}, false};
  const Rect fp = p.footprint(ComponentId{0}, alloc);
  EXPECT_EQ(fp, (Rect{2, 3, 4, 3}));
}

TEST(Placement, FootprintRotatedSwapsDimensions) {
  const Allocation alloc(AllocationSpec{1, 0, 0, 0});
  Placement p(alloc.size());
  p.at(ComponentId{0}) = {{2, 3}, true};
  const Rect fp = p.footprint(ComponentId{0}, alloc);
  EXPECT_EQ(fp, (Rect{2, 3, 3, 4}));
}

TEST(Placement, LegalPlacementPasses) {
  const Allocation alloc(AllocationSpec{2, 0, 0, 0});
  Placement p(alloc.size());
  p.at(ComponentId{0}) = {{1, 1}, false};
  p.at(ComponentId{1}) = {{7, 1}, false};
  EXPECT_TRUE(p.is_legal(alloc, spec_16()));
  EXPECT_TRUE(p.violations(alloc, spec_16()).empty());
}

TEST(Placement, OutOfBoundsDetected) {
  const Allocation alloc(AllocationSpec{1, 0, 0, 0});
  Placement p(alloc.size());
  p.at(ComponentId{0}) = {{14, 1}, false};  // 4 wide at x=14 on 16 grid
  const auto v = p.violations(alloc, spec_16());
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].find("out of bounds"), std::string::npos);
}

TEST(Placement, NegativeOriginDetected) {
  const Allocation alloc(AllocationSpec{1, 0, 0, 0});
  Placement p(alloc.size());
  p.at(ComponentId{0}) = {{-1, 0}, false};
  EXPECT_FALSE(p.is_legal(alloc, spec_16()));
}

TEST(Placement, OverlapDetected) {
  const Allocation alloc(AllocationSpec{2, 0, 0, 0});
  Placement p(alloc.size());
  p.at(ComponentId{0}) = {{1, 1}, false};
  p.at(ComponentId{1}) = {{3, 2}, false};
  const auto v = p.violations(alloc, spec_16());
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].find("overlap"), std::string::npos);
}

TEST(Placement, SpacingViolationDetected) {
  // Touching footprints violate the 1-cell spacing default.
  const Allocation alloc(AllocationSpec{2, 0, 0, 0});
  Placement p(alloc.size());
  p.at(ComponentId{0}) = {{1, 1}, false};   // covers x 1..4
  p.at(ComponentId{1}) = {{5, 1}, false};   // adjacent, no gap
  ChipSpec spec = spec_16();
  EXPECT_FALSE(p.is_legal(alloc, spec));
  spec.component_spacing = 0;
  EXPECT_TRUE(p.is_legal(alloc, spec));
}

TEST(Placement, SpacingExactlyOneCellIsLegal) {
  const Allocation alloc(AllocationSpec{2, 0, 0, 0});
  Placement p(alloc.size());
  p.at(ComponentId{0}) = {{1, 1}, false};   // covers x 1..4
  p.at(ComponentId{1}) = {{6, 1}, false};   // one free column at x=5
  EXPECT_TRUE(p.is_legal(alloc, spec_16()));
}

TEST(Placement, TotalPairwiseDistance) {
  const Allocation alloc(AllocationSpec{2, 0, 0, 0});
  Placement p(alloc.size());
  p.at(ComponentId{0}) = {{0, 0}, false};   // center (2,1)
  p.at(ComponentId{1}) = {{10, 0}, false};  // center (12,1)
  EXPECT_EQ(p.total_pairwise_distance(alloc), 10);
}

TEST(Placement, AsciiRendering) {
  const Allocation alloc(AllocationSpec{1, 0, 0, 0});
  ChipSpec spec;
  spec.grid_width = 6;
  spec.grid_height = 4;
  Placement p(alloc.size());
  p.at(ComponentId{0}) = {{0, 0}, false};
  const std::string art = p.to_ascii(alloc, spec);
  // Bottom row (printed last) holds the footprint marker 'A'.
  EXPECT_NE(art.find('A'), std::string::npos);
  EXPECT_NE(art.find('.'), std::string::npos);
  // 4 lines of 6 characters plus newlines.
  EXPECT_EQ(art.size(), 4u * 7u);
}

TEST(Placement, AsciiOverlayMarksFreeCellsOnly) {
  const Allocation alloc(AllocationSpec{1, 0, 0, 0});
  ChipSpec spec;
  spec.grid_width = 6;
  spec.grid_height = 4;
  Placement p(alloc.size());
  p.at(ComponentId{0}) = {{0, 0}, false};  // 4x3 footprint
  // One overlay cell inside the footprint (hidden), one outside (drawn),
  // one out of bounds (ignored).
  const std::string art =
      p.to_ascii(alloc, spec, {{1, 1}, {5, 3}, {9, 9}}, '+');
  EXPECT_EQ(std::count(art.begin(), art.end(), '+'), 1);
  EXPECT_NE(art.find('A'), std::string::npos);
}

}  // namespace
}  // namespace fbmb
