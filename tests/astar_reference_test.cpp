// Reference checks for the router's A* search: on a quiet grid (no
// temporal constraints) the routed cost must equal an independent
// Dijkstra's, for both uniform and wash-weighted cell costs.

#include <gtest/gtest.h>

#include <limits>
#include <queue>

#include "route/router.hpp"
#include "util/rng.hpp"

namespace fbmb {
namespace {

/// Independent Dijkstra over cost(cell) = 1 + weight(cell), multi-source /
/// multi-target, mirroring the router's cost model.
double dijkstra_cost(const RoutingGrid& grid,
                     const std::vector<Point>& sources,
                     const std::vector<Point>& targets, double uniform_weight,
                     bool use_cell_weights) {
  auto weight = [&](const Point& p) {
    return use_cell_weights ? grid.cell(p).weight : uniform_weight;
  };
  std::unordered_map<Point, double> dist;
  using Item = std::pair<double, Point>;
  auto cmp = [](const Item& a, const Item& b) {
    if (a.first != b.first) return a.first > b.first;
    return b.second < a.second;
  };
  std::priority_queue<Item, std::vector<Item>, decltype(cmp)> open(cmp);
  for (const Point& s : sources) {
    if (grid.blocked(s)) continue;
    const double d = 1.0 + weight(s);
    dist[s] = d;
    open.push({d, s});
  }
  while (!open.empty()) {
    const auto [d, p] = open.top();
    open.pop();
    if (dist[p] < d) continue;
    for (const Point& n : grid.neighbors(p)) {
      if (grid.blocked(n)) continue;
      const double nd = d + 1.0 + weight(n);
      auto it = dist.find(n);
      if (it == dist.end() || nd < it->second) {
        dist[n] = nd;
        open.push({nd, n});
      }
    }
  }
  double best = std::numeric_limits<double>::infinity();
  for (const Point& t : targets) {
    if (auto it = dist.find(t); it != dist.end()) {
      best = std::min(best, it->second);
    }
  }
  return best;
}

double path_cost(const RoutingGrid& grid, const std::vector<Point>& cells,
                 double uniform_weight, bool use_cell_weights) {
  double cost = 0.0;
  for (const Point& p : cells) {
    cost += 1.0 + (use_cell_weights ? grid.cell(p).weight : uniform_weight);
  }
  return cost;
}

TEST(AStarReference, MatchesDijkstraOnRandomGrids) {
  Rng rng(2024);
  for (int trial = 0; trial < 12; ++trial) {
    Allocation alloc(AllocationSpec{2, 0, 0, 0});
    ChipSpec chip;
    chip.grid_width = 18;
    chip.grid_height = 18;
    Placement placement(2);
    placement.at(ComponentId{0}) = {
        {rng.uniform_int(0, 5), rng.uniform_int(0, 13)}, false};
    placement.at(ComponentId{1}) = {
        {rng.uniform_int(10, 14), rng.uniform_int(0, 13)}, false};
    if (!placement.is_legal(alloc, chip)) continue;

    RoutingGrid grid(chip, alloc, placement);
    // Randomize cell weights to exercise the weighted search.
    for (int x = 0; x < grid.width(); ++x) {
      for (int y = 0; y < grid.height(); ++y) {
        grid.cell({x, y}).weight = rng.uniform(0.0, 12.0);
      }
    }
    RoutingGrid reference = grid;  // identical weights

    Schedule s;
    TransportTask t;
    t.id = 0;
    t.producer = OperationId{0};
    t.consumer = OperationId{1};
    t.from = ComponentId{0};
    t.to = ComponentId{1};
    t.fluid = Fluid{"f", 1e-5};
    t.departure = 0.0;
    t.transport_time = 2.0;
    t.consume = 2.0;
    s.transports = {t};

    const auto routed = route_transports(grid, s, WashModel{});
    ASSERT_EQ(routed.paths.size(), 1u);
    const double a_star = path_cost(reference, routed.paths[0].cells,
                                    chip.initial_cell_weight, true);
    const double optimal = dijkstra_cost(
        reference, reference.ports(ComponentId{0}),
        reference.ports(ComponentId{1}), chip.initial_cell_weight, true);
    EXPECT_NEAR(a_star, optimal, 1e-9) << "trial " << trial;
  }
}

TEST(AStarReference, UniformWeightsGiveShortestPath) {
  Allocation alloc(AllocationSpec{2, 0, 0, 0});
  ChipSpec chip;
  chip.grid_width = 20;
  chip.grid_height = 20;
  Placement placement(2);
  placement.at(ComponentId{0}) = {{1, 9}, false};
  placement.at(ComponentId{1}) = {{15, 9}, false};
  RoutingGrid grid(chip, alloc, placement);
  RoutingGrid reference = grid;

  Schedule s;
  TransportTask t;
  t.id = 0;
  t.producer = OperationId{0};
  t.consumer = OperationId{1};
  t.from = ComponentId{0};
  t.to = ComponentId{1};
  t.fluid = Fluid{"f", 1e-5};
  t.departure = 0.0;
  t.transport_time = 2.0;
  t.consume = 2.0;
  s.transports = {t};
  RouterOptions opts;
  opts.wash_aware_weights = false;  // constant w_e
  const auto routed = route_transports(grid, s, WashModel{}, opts);
  const double optimal = dijkstra_cost(
      reference, reference.ports(ComponentId{0}),
      reference.ports(ComponentId{1}), chip.initial_cell_weight, false);
  EXPECT_NEAR(path_cost(reference, routed.paths[0].cells,
                        chip.initial_cell_weight, false),
              optimal, 1e-9);
}

}  // namespace
}  // namespace fbmb
