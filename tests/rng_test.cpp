#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace fbmb {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng rng(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(rng.next());
  rng.reseed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1000000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.bounded(bound), bound);
    }
  }
}

TEST(Rng, BoundedOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(11);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(13);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(17);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // law of large numbers
}

TEST(Rng, UniformRange) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.5, 7.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 7.5);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(29);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, UniformityOfBounded) {
  // Chi-square-ish sanity: buckets should be roughly even.
  Rng rng(31);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 50000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.bounded(kBuckets)];
  }
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(ForkSeed, DeterministicPerIndex) {
  for (std::uint64_t index : {0ull, 1ull, 7ull, 1000000ull}) {
    EXPECT_EQ(fork_seed(42, index), fork_seed(42, index));
  }
}

TEST(ForkSeed, DistinctAcrossIndicesAndSeeds) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    for (std::uint64_t index = 0; index < 32; ++index) {
      seen.insert(fork_seed(seed, index));
    }
  }
  EXPECT_EQ(seen.size(), 32u * 32u);  // no collisions in a dense grid
}

TEST(ForkSeed, NoAdjacentSeedIndexAliasing) {
  // The failure mode of the old `seed + i` derivation: (s, i+1) == (s+1, i).
  EXPECT_NE(fork_seed(5, 1), fork_seed(6, 0));
  EXPECT_NE(fork_seed(0, 1), fork_seed(1, 0));
  // And the forked value is not the seed itself.
  EXPECT_NE(fork_seed(42, 0), 42u);
}

TEST(ForkSeed, ForkedStreamsAreUncorrelated) {
  Rng a(fork_seed(1, 0)), b(fork_seed(1, 1));
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ull);
  Rng rng(37);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace fbmb
