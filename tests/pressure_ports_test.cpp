#include "route/pressure_ports.hpp"

#include <gtest/gtest.h>

#include "bench_suite/benchmarks.hpp"
#include "biochip/cost_model.hpp"
#include "core/synthesis.hpp"

namespace fbmb {
namespace {

RoutedPath driven(double start, double end, double wash = 0.0) {
  RoutedPath p;
  p.start = start;
  p.transport_end = end;
  p.cache_until = end;
  p.wash_duration = wash;
  return p;
}

TEST(PressurePorts, EmptyRouting) {
  const auto a = assign_pressure_ports({});
  EXPECT_EQ(a.port_count, 0);
  EXPECT_EQ(a.peak_concurrency, 0);
  EXPECT_TRUE(a.port_of.empty());
}

TEST(PressurePorts, DisjointTasksShareOnePort) {
  RoutingResult routing;
  routing.paths = {driven(0, 2), driven(2, 4), driven(10, 12)};
  const auto a = assign_pressure_ports(routing);
  EXPECT_EQ(a.port_count, 1);
  EXPECT_EQ(a.peak_concurrency, 1);
  EXPECT_EQ(a.port_of[0], a.port_of[1]);
  EXPECT_EQ(a.port_of[1], a.port_of[2]);
}

TEST(PressurePorts, ConcurrentTasksNeedDistinctPorts) {
  RoutingResult routing;
  routing.paths = {driven(0, 4), driven(1, 5), driven(2, 6)};
  const auto a = assign_pressure_ports(routing);
  EXPECT_EQ(a.port_count, 3);
  EXPECT_EQ(a.peak_concurrency, 3);
  EXPECT_NE(a.port_of[0], a.port_of[1]);
  EXPECT_NE(a.port_of[1], a.port_of[2]);
  EXPECT_NE(a.port_of[0], a.port_of[2]);
}

TEST(PressurePorts, WashWindowExtendsTheDrive) {
  // Task B's flush starts while A still drives: they overlap only through
  // the wash window.
  RoutingResult routing;
  routing.paths = {driven(0, 4), driven(6, 8, /*wash=*/3.0)};  // B from 3
  const auto a = assign_pressure_ports(routing);
  EXPECT_EQ(a.port_count, 2);
}

TEST(PressurePorts, CacheDwellNeedsNoPressure) {
  // A long cached plug does not hold the port: B can reuse it.
  RoutingResult routing;
  RoutedPath cached = driven(0, 2);
  cached.cache_until = 100.0;  // parked, not driven
  routing.paths = {cached, driven(5, 7)};
  const auto a = assign_pressure_ports(routing);
  EXPECT_EQ(a.port_count, 1);
}

TEST(PressurePorts, PortCountEqualsPeakConcurrency) {
  // Interval-graph coloring: greedy is optimal, port count == clique size.
  for (const auto& bench : paper_benchmarks()) {
    const Allocation alloc(bench.allocation);
    const auto result = synthesize_dcsa(bench.graph, alloc, bench.wash);
    const auto a = assign_pressure_ports(result.routing);
    EXPECT_EQ(a.port_count, a.peak_concurrency) << bench.name;
    // No two tasks on the same port may overlap in their drive windows.
    const auto& paths = result.routing.paths;
    for (std::size_t i = 0; i < paths.size(); ++i) {
      for (std::size_t j = i + 1; j < paths.size(); ++j) {
        if (a.port_of[i] != a.port_of[j]) continue;
        const TimeInterval wi{paths[i].start - paths[i].wash_duration,
                              paths[i].transport_end};
        const TimeInterval wj{paths[j].start - paths[j].wash_duration,
                              paths[j].transport_end};
        EXPECT_FALSE(wi.overlaps(wj)) << bench.name;
      }
    }
  }
}

TEST(CostModel, BreakdownSumsToTotal) {
  const CostBreakdown cost = chip_cost(100, 500.0, 20, 8, 4);
  EXPECT_DOUBLE_EQ(cost.total(), cost.area + cost.channels + cost.valves +
                                     cost.control_lines +
                                     cost.pressure_ports);
  EXPECT_DOUBLE_EQ(cost.area, 0.2 * 100);
  EXPECT_DOUBLE_EQ(cost.channels, 0.05 * 500.0);
  EXPECT_DOUBLE_EQ(cost.valves, 20.0);
  EXPECT_DOUBLE_EQ(cost.control_lines, 16.0);
  EXPECT_DOUBLE_EQ(cost.pressure_ports, 12.0);
}

TEST(CostModel, CustomWeights) {
  CostWeights weights;
  weights.per_valve = 10.0;
  const CostBreakdown cost = chip_cost(0, 0.0, 3, 0, 0, weights);
  EXPECT_DOUBLE_EQ(cost.total(), 30.0);
}

}  // namespace
}  // namespace fbmb
