#include "schedule/dedicated_scheduler.hpp"

#include <gtest/gtest.h>

#include "bench_suite/benchmarks.hpp"
#include "graph/graph_builder.hpp"
#include "schedule/list_scheduler.hpp"

namespace fbmb {
namespace {

constexpr double kEps = 1e-9;

TEST(DedicatedScheduler, SingleOperationNoStorageTraffic) {
  GraphBuilder b;
  b.mix("a", 5, 2.0);
  const Allocation alloc(AllocationSpec{1, 0, 0, 0});
  const auto r = schedule_dedicated(b.graph(), alloc, b.wash_model());
  EXPECT_DOUBLE_EQ(r.schedule.completion_time, 5.0);
  EXPECT_EQ(r.storage_round_trips, 0);
  EXPECT_DOUBLE_EQ(r.port_busy_time, 0.0);
  EXPECT_EQ(r.peak_storage_usage, 0);
}

TEST(DedicatedScheduler, EveryDependencyRoundTripsThroughStorage) {
  GraphBuilder b;
  const auto a = b.mix("a", 3, 0.2);
  const auto c = b.mix("c", 4, 0.2);
  b.dep(a, c);
  const Allocation alloc(AllocationSpec{2, 0, 0, 0});
  const auto r = schedule_dedicated(b.graph(), alloc, b.wash_model());
  EXPECT_EQ(r.storage_round_trips, 1);
  // Two transports per edge: producer->storage, storage->consumer.
  ASSERT_EQ(r.schedule.transports.size(), 2u);
  const ComponentId storage = storage_unit_id(alloc);
  EXPECT_EQ(r.schedule.transports[0].to, storage);
  EXPECT_EQ(r.schedule.transports[1].from, storage);
  // Both transactions used the port.
  EXPECT_DOUBLE_EQ(r.port_busy_time, 2.0 * 1.0);
  (void)a;
  (void)c;
}

TEST(DedicatedScheduler, ConsumerWaitsForRoundTripLatency) {
  // a ends at 3; entry port at 5 (3 + t_c), available 6; retrieval >= 6,
  // consumer start >= 6 + 1 + 2 = 9. Compare with DCSA's 5.
  GraphBuilder b;
  const auto a = b.mix("a", 3, 0.2);
  const auto c = b.mix("c", 4, 0.2);
  b.dep(a, c);
  const Allocation alloc(AllocationSpec{2, 0, 0, 0});
  const auto r = schedule_dedicated(b.graph(), alloc, b.wash_model());
  EXPECT_NEAR(r.schedule.at(c).start, 9.0, kEps);

  const auto dcsa = schedule_bioassay(b.graph(), alloc, b.wash_model());
  EXPECT_LT(dcsa.at(c).start, r.schedule.at(c).start);
  (void)a;
}

TEST(DedicatedScheduler, PortSerializesConcurrentEntries) {
  // Two independent producers finish simultaneously: their storage entries
  // must occupy disjoint port slots, blocking one producer.
  GraphBuilder b;
  const auto a1 = b.mix("a1", 3, 0.2);
  const auto a2 = b.mix("a2", 3, 0.2);
  const auto c1 = b.mix("c1", 2, 0.2);
  const auto c2 = b.mix("c2", 2, 0.2);
  b.dep(a1, c1);
  b.dep(a2, c2);
  const Allocation alloc(AllocationSpec{2, 0, 0, 0});
  const auto r = schedule_dedicated(b.graph(), alloc, b.wash_model());
  // Port busy for 4 transactions, and at least one producer blocked by the
  // serialized entry (a1, a2 both end at t=3, both want the port at t=5).
  EXPECT_DOUBLE_EQ(r.port_busy_time, 4.0);
  EXPECT_GT(r.storage_wait_time, 0.0);
  (void)c1;
  (void)c2;
}

TEST(DedicatedScheduler, DcsaBeatsDedicatedOnEveryBenchmark) {
  // The paper's core motivation: removing the dedicated unit's bandwidth
  // bottleneck shortens execution.
  for (const auto& bench : paper_benchmarks()) {
    const Allocation alloc(bench.allocation);
    const auto dedicated =
        schedule_dedicated(bench.graph, alloc, bench.wash);
    const auto dcsa = schedule_bioassay(bench.graph, alloc, bench.wash);
    EXPECT_LE(dcsa.completion_time,
              dedicated.schedule.completion_time + kEps)
        << bench.name;
  }
}

TEST(DedicatedScheduler, ScheduleRespectsDependencies) {
  for (const auto& bench : paper_benchmarks()) {
    const Allocation alloc(bench.allocation);
    const auto r = schedule_dedicated(bench.graph, alloc, bench.wash);
    for (const auto& dep : bench.graph.dependencies()) {
      // Round-trip latency: consumer starts at least 2*t_c + 2 port
      // transactions after the producer ends.
      EXPECT_GE(r.schedule.at(dep.to).start,
                r.schedule.at(dep.from).end + 2.0 * 2.0 + 2.0 * 1.0 - kEps)
          << bench.name;
    }
  }
}

TEST(DedicatedScheduler, ComponentExclusionAndWashGaps) {
  for (const auto& bench : paper_benchmarks()) {
    const Allocation alloc(bench.allocation);
    const auto r = schedule_dedicated(bench.graph, alloc, bench.wash);
    for (const auto& comp : alloc.components()) {
      const auto ops = r.schedule.operations_on(comp.id);
      for (std::size_t i = 1; i < ops.size(); ++i) {
        EXPECT_GE(ops[i].start, ops[i - 1].end - kEps) << bench.name;
      }
    }
  }
}

TEST(DedicatedScheduler, PeakUsageGrowsWithParallelism) {
  // A wide fan-out parks many shares at once.
  GraphBuilder b;
  const auto root = b.mix("root", 3, 0.2);
  for (int i = 0; i < 6; ++i) {
    const auto leaf = b.mix("leaf" + std::to_string(i), 30, 0.2);
    b.dep(root, leaf);
  }
  const Allocation alloc(AllocationSpec{2, 0, 0, 0});
  const auto r = schedule_dedicated(b.graph(), alloc, b.wash_model());
  EXPECT_GE(r.peak_storage_usage, 4);
  (void)root;
}

TEST(DedicatedScheduler, CapacityDelaysEntries) {
  GraphBuilder b;
  const auto root = b.mix("root", 3, 0.2);
  for (int i = 0; i < 6; ++i) {
    const auto leaf = b.mix("leaf" + std::to_string(i), 30, 0.2);
    b.dep(root, leaf);
  }
  const Allocation alloc(AllocationSpec{2, 0, 0, 0});
  DedicatedStorageOptions tight;
  tight.capacity = 2;
  DedicatedStorageOptions loose;
  loose.capacity = 0;  // unbounded
  const auto r_tight = schedule_dedicated(b.graph(), alloc, b.wash_model(),
                                          tight);
  const auto r_loose = schedule_dedicated(b.graph(), alloc, b.wash_model(),
                                          loose);
  EXPECT_GE(r_tight.schedule.completion_time,
            r_loose.schedule.completion_time - kEps);
  (void)root;
}

TEST(DedicatedScheduler, ThrowsWithoutQualifiedComponent) {
  GraphBuilder b;
  b.heat("h", 3, 2.0);
  EXPECT_THROW(schedule_dedicated(b.graph(), Allocation({1, 0, 0, 0}),
                                  b.wash_model()),
               SchedulingError);
}

TEST(DedicatedScheduler, Deterministic) {
  const auto bench = make_cpa();
  const Allocation alloc(bench.allocation);
  const auto a = schedule_dedicated(bench.graph, alloc, bench.wash);
  const auto b = schedule_dedicated(bench.graph, alloc, bench.wash);
  EXPECT_DOUBLE_EQ(a.schedule.completion_time, b.schedule.completion_time);
  EXPECT_EQ(a.storage_round_trips, b.storage_round_trips);
  EXPECT_DOUBLE_EQ(a.port_busy_time, b.port_busy_time);
}

}  // namespace
}  // namespace fbmb
