#include "report/svg.hpp"

#include <gtest/gtest.h>

#include "bench_suite/benchmarks.hpp"
#include "core/synthesis.hpp"

namespace fbmb {
namespace {

struct Fixture {
  Allocation alloc{AllocationSpec{2, 0, 0, 0}};
  ChipSpec chip;
  Placement placement{2};

  Fixture() {
    chip.grid_width = 12;
    chip.grid_height = 12;
    placement.at(ComponentId{0}) = {{1, 1}, false};
    placement.at(ComponentId{1}) = {{7, 7}, false};
  }
};

TEST(Svg, WellFormedDocument) {
  Fixture fx;
  const std::string svg =
      render_layout_svg(fx.alloc, fx.placement, fx.chip, {});
  EXPECT_TRUE(svg.starts_with("<svg"));
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("xmlns"), std::string::npos);
}

TEST(Svg, DimensionsFollowGridAndCellSize) {
  Fixture fx;
  SvgOptions opts;
  opts.cell_pixels = 10;
  const std::string svg =
      render_layout_svg(fx.alloc, fx.placement, fx.chip, {}, opts);
  EXPECT_NE(svg.find("width=\"120\""), std::string::npos);
  EXPECT_NE(svg.find("height=\"120\""), std::string::npos);
}

TEST(Svg, ComponentsLabeled) {
  Fixture fx;
  const std::string svg =
      render_layout_svg(fx.alloc, fx.placement, fx.chip, {});
  EXPECT_NE(svg.find("Mixer1"), std::string::npos);
  EXPECT_NE(svg.find("Mixer2"), std::string::npos);
}

TEST(Svg, LabelsCanBeDisabled) {
  Fixture fx;
  SvgOptions opts;
  opts.label_components = false;
  const std::string svg =
      render_layout_svg(fx.alloc, fx.placement, fx.chip, {}, opts);
  EXPECT_EQ(svg.find("Mixer1"), std::string::npos);
}

TEST(Svg, RoutesRenderedAsPolylines) {
  Fixture fx;
  RoutingResult routing;
  RoutedPath path;
  path.transport_id = 0;
  path.from_component = 0;
  path.to_component = 1;
  path.cells = {{5, 1}, {5, 2}, {5, 3}};
  routing.paths = {path};
  const std::string svg =
      render_layout_svg(fx.alloc, fx.placement, fx.chip, routing);
  EXPECT_NE(svg.find("<polyline"), std::string::npos);
}

TEST(Svg, CacheTailHighlighted) {
  Fixture fx;
  RoutingResult routing;
  RoutedPath path;
  path.transport_id = 0;
  path.from_component = 0;
  path.to_component = 1;
  path.cells = {{5, 1}, {5, 2}};
  path.transport_end = 2.0;
  path.cache_until = 10.0;  // cached
  routing.paths = {path};
  const std::string svg =
      render_layout_svg(fx.alloc, fx.placement, fx.chip, routing);
  EXPECT_NE(svg.find("stroke-dasharray"), std::string::npos);
}

TEST(Svg, GridCanBeDisabled) {
  Fixture fx;
  SvgOptions with, without;
  without.draw_grid = false;
  const std::string a =
      render_layout_svg(fx.alloc, fx.placement, fx.chip, {}, with);
  const std::string b =
      render_layout_svg(fx.alloc, fx.placement, fx.chip, {}, without);
  EXPECT_GT(a.size(), b.size());
}

TEST(Svg, FullFlowRenders) {
  const auto bench = make_ivd();
  const Allocation alloc(bench.allocation);
  const auto result = synthesize_dcsa(bench.graph, alloc, bench.wash);
  const std::string svg = render_layout_svg(alloc, result.placement,
                                            result.chip, result.routing);
  EXPECT_GT(svg.size(), 1000u);
  for (const auto& comp : alloc.components()) {
    EXPECT_NE(svg.find(comp.name), std::string::npos);
  }
}

}  // namespace
}  // namespace fbmb
