#include "graph/graph_builder.hpp"

#include <gtest/gtest.h>

namespace fbmb {
namespace {

TEST(GraphBuilder, BuildsValidGraph) {
  GraphBuilder b;
  const auto a = b.mix("a", 5, 2.0);
  const auto c = b.detect("c", 3, 0.2);
  b.dep(a, c);
  const SequencingGraph g = b.build();
  EXPECT_EQ(g.operation_count(), 2u);
  EXPECT_EQ(g.dependency_count(), 1u);
  EXPECT_EQ(g.operation(a).type, ComponentType::kMixer);
  EXPECT_EQ(g.operation(c).type, ComponentType::kDetector);
}

TEST(GraphBuilder, WashSecondsRoundTripThroughModel) {
  GraphBuilder b;
  const auto a = b.mix("a", 5, 3.5);
  const SequencingGraph g = b.graph();
  EXPECT_NEAR(
      b.wash_model().wash_time(g.operation(a).output.diffusion_coefficient),
      3.5, 1e-9);
}

TEST(GraphBuilder, WashOverridesPinnedExactly) {
  GraphBuilder b;
  // 10 s exceeds the default anchors' 6 s maximum; the override must still
  // return exactly 10 s (the paper's o1 example uses 10 s washes).
  const auto a = b.mix("a", 6, 10.0);
  const SequencingGraph g = b.graph();
  EXPECT_DOUBLE_EQ(
      b.wash_model().wash_time(g.operation(a).output.diffusion_coefficient),
      10.0);
}

TEST(GraphBuilder, AllOperationKinds) {
  GraphBuilder b;
  EXPECT_EQ(b.graph().operation(b.mix("m", 1, 1)).type,
            ComponentType::kMixer);
  EXPECT_EQ(b.graph().operation(b.heat("h", 1, 1)).type,
            ComponentType::kHeater);
  EXPECT_EQ(b.graph().operation(b.filter("f", 1, 1)).type,
            ComponentType::kFilter);
  EXPECT_EQ(b.graph().operation(b.detect("d", 1, 1)).type,
            ComponentType::kDetector);
}

TEST(GraphBuilder, ExplicitFluidOp) {
  GraphBuilder b;
  const auto id = b.op("x", ComponentType::kFilter, 2.0, Fluid{"cells", 5e-8});
  EXPECT_EQ(b.graph().operation(id).output.name, "cells");
}

TEST(GraphBuilder, DepThrowsOnDuplicate) {
  GraphBuilder b;
  const auto a = b.mix("a", 1, 1);
  const auto c = b.mix("c", 1, 1);
  b.dep(a, c);
  EXPECT_THROW(b.dep(a, c), std::invalid_argument);
  EXPECT_THROW(b.dep(a, a), std::invalid_argument);
}

TEST(GraphBuilder, BuildThrowsOnCycle) {
  GraphBuilder b;
  const auto a = b.mix("a", 1, 1);
  const auto c = b.mix("c", 1, 1);
  b.dep(a, c);
  b.dep(c, a);  // allowed at insert time...
  EXPECT_THROW(b.build(), std::invalid_argument);  // ...caught at build
}

TEST(GraphBuilder, ChainCreatesSequentialDeps) {
  GraphBuilder b;
  const auto a = b.mix("a", 1, 1);
  const auto c = b.mix("c", 1, 1);
  const auto d = b.mix("d", 1, 1);
  const auto e = b.mix("e", 1, 1);
  b.chain(a, c, d, e);
  const auto& g = b.graph();
  EXPECT_TRUE(g.has_dependency(a, c));
  EXPECT_TRUE(g.has_dependency(c, d));
  EXPECT_TRUE(g.has_dependency(d, e));
  EXPECT_EQ(g.dependency_count(), 3u);
}

}  // namespace
}  // namespace fbmb
