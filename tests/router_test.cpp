#include "route/router.hpp"

#include <gtest/gtest.h>

#include "route/validator.hpp"

namespace fbmb {
namespace {

/// Two mixers on a 20x20 grid, far apart.
struct RouterFixture {
  Allocation alloc{AllocationSpec{3, 0, 0, 0}};
  ChipSpec chip;
  Placement placement{3};
  WashModel wash;

  RouterFixture() {
    chip.grid_width = 20;
    chip.grid_height = 20;
    placement.at(ComponentId{0}) = {{1, 1}, false};
    placement.at(ComponentId{1}) = {{14, 1}, false};
    placement.at(ComponentId{2}) = {{1, 14}, false};
  }

  RoutingGrid grid() { return RoutingGrid(chip, alloc, placement); }

  static TransportTask transport(int id, int from, int to, double dep,
                                 double consume,
                                 const Fluid& fluid = Fluid{"f", 1e-5}) {
    TransportTask t;
    t.id = id;
    t.producer = OperationId{id};
    t.consumer = OperationId{id + 100};
    t.from = ComponentId{from};
    t.to = ComponentId{to};
    t.fluid = fluid;
    t.departure = dep;
    t.transport_time = 2.0;
    t.consume = consume;
    return t;
  }
};

TEST(Router, RoutesSingleTransport) {
  RouterFixture fx;
  auto grid = fx.grid();
  Schedule s;
  s.transports = {RouterFixture::transport(0, 0, 1, 0.0, 2.0)};
  const auto result = route_transports(grid, s, fx.wash);
  ASSERT_EQ(result.paths.size(), 1u);
  const auto& path = result.paths[0];
  EXPECT_GT(path.cells.size(), 1u);
  EXPECT_DOUBLE_EQ(path.start, 0.0);
  EXPECT_DOUBLE_EQ(path.transport_end, 2.0);
  EXPECT_DOUBLE_EQ(path.delay, 0.0);
  EXPECT_DOUBLE_EQ(path.wash_duration, 0.0);  // clean chip
  EXPECT_DOUBLE_EQ(result.total_wash_time, 0.0);
}

TEST(Router, ShortestPathOnEmptyGrid) {
  RouterFixture fx;
  auto grid = fx.grid();
  Schedule s;
  s.transports = {RouterFixture::transport(0, 0, 1, 0.0, 2.0)};
  const auto result = route_transports(grid, s, fx.wash);
  // Footprints: x1..4 and x14..17 at same y-band; nearest ports are
  // (5, y) and (13, y): 8 apart, so path has 9 cells (8 edges).
  EXPECT_EQ(result.paths[0].length_cells(), 8);
}

TEST(Router, SameComponentTransportIsStub) {
  RouterFixture fx;
  auto grid = fx.grid();
  Schedule s;
  s.transports = {RouterFixture::transport(0, 0, 0, 0.0, 10.0)};
  const auto result = route_transports(grid, s, fx.wash);
  ASSERT_EQ(result.paths.size(), 1u);
  EXPECT_EQ(result.paths[0].cells.size(), 1u);  // parked in one port cell
  EXPECT_EQ(result.paths[0].length_cells(), 0);
  EXPECT_DOUBLE_EQ(result.paths[0].cache_until, 10.0);
}

TEST(Router, CacheDwellOccupiesTailCells) {
  RouterFixture fx;
  auto grid = fx.grid();
  Schedule s;
  // Arrives at 2.0, consumed at 30.0: 28 s channel cache.
  s.transports = {RouterFixture::transport(0, 0, 1, 0.0, 30.0)};
  const auto result = route_transports(grid, s, fx.wash);
  const auto& path = result.paths[0];
  EXPECT_DOUBLE_EQ(path.cache_until, 30.0);
  // The destination-side tail cell is occupied until consume.
  const Point tail = path.cells.back();
  EXPECT_TRUE(grid.cell(tail).occupancy.overlaps({20.0, 21.0}));
  // The source-side head cell is free again after the movement.
  const Point head = path.cells.front();
  EXPECT_FALSE(grid.cell(head).occupancy.overlaps({20.0, 21.0}));
}

TEST(Router, WashAwareWeightUpdate) {
  RouterFixture fx;
  auto grid = fx.grid();
  Schedule s;
  const Fluid slow{"cells", 5e-8};  // wash 6 s
  s.transports = {RouterFixture::transport(0, 0, 1, 0.0, 2.0, slow)};
  RouterOptions opts;  // wash-aware defaults
  const auto result = route_transports(grid, s, fx.wash, opts);
  for (const Point& p : result.paths[0].cells) {
    EXPECT_DOUBLE_EQ(grid.cell(p).weight, 6.0);
    ASSERT_TRUE(grid.cell(p).residue.has_value());
    EXPECT_EQ(grid.cell(p).residue->name, "cells");
  }
}

TEST(Router, BaselineKeepsConstantWeights) {
  RouterFixture fx;
  auto grid = fx.grid();
  Schedule s;
  const Fluid slow{"cells", 5e-8};
  s.transports = {RouterFixture::transport(0, 0, 1, 0.0, 2.0, slow)};
  RouterOptions opts;
  opts.wash_aware_weights = false;
  const auto result = route_transports(grid, s, fx.wash, opts);
  for (const Point& p : result.paths[0].cells) {
    EXPECT_DOUBLE_EQ(grid.cell(p).weight, fx.chip.initial_cell_weight);
    // Residue still tracked (needed for wash accounting).
    EXPECT_TRUE(grid.cell(p).residue.has_value());
  }
}

TEST(Router, SequentialSameFluidNeedsNoWash) {
  RouterFixture fx;
  auto grid = fx.grid();
  Schedule s;
  const Fluid f{"buffer", 1e-5};
  s.transports = {RouterFixture::transport(0, 0, 1, 0.0, 2.0, f),
                  RouterFixture::transport(1, 0, 1, 10.0, 12.0, f)};
  const auto result = route_transports(grid, s, fx.wash);
  EXPECT_DOUBLE_EQ(result.total_wash_time, 0.0);
}

TEST(Router, ForeignResidueTriggersWash) {
  RouterFixture fx;
  auto grid = fx.grid();
  Schedule s;
  const Fluid slow{"cells", 5e-8};    // leaves 6 s residue
  const Fluid fast{"buffer", 1e-5};
  s.transports = {RouterFixture::transport(0, 0, 1, 0.0, 2.0, slow),
                  RouterFixture::transport(1, 0, 1, 20.0, 22.0, fast)};
  // Wash-aware weights make the second task prefer reusing the first path
  // anyway if it is cheapest; with weights off it takes the same shortest
  // path deterministically and must flush the 6 s residue.
  RouterOptions opts;
  opts.wash_aware_weights = false;
  const auto result = route_transports(grid, s, fx.wash, opts);
  EXPECT_DOUBLE_EQ(result.paths[1].wash_duration, 6.0);
  EXPECT_DOUBLE_EQ(result.total_wash_time, 6.0);
}

TEST(Router, ConcurrentTasksDoNotConflict) {
  RouterFixture fx;
  auto grid = fx.grid();
  Schedule s;
  // Two tasks moving at the same time between crossing pairs.
  s.transports = {RouterFixture::transport(0, 0, 1, 0.0, 2.0),
                  RouterFixture::transport(1, 2, 1, 0.0, 2.0)};
  const auto result = route_transports(grid, s, fx.wash);
  RoutingGrid fresh(fx.chip, fx.alloc, fx.placement);
  const auto errors = validate_routing(result, s, fresh, fx.wash);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
  EXPECT_DOUBLE_EQ(result.delays[0], 0.0);
  EXPECT_DOUBLE_EQ(result.delays[1], 0.0);
}

TEST(Router, BaselinePostponesOnConflict) {
  // Force both tasks through a 1-wide corridor at the same time: the
  // wash-oblivious baseline router shares the shortest corridor and must
  // postpone the second task.
  Allocation alloc{AllocationSpec{2, 0, 0, 0}};
  ChipSpec chip;
  chip.grid_width = 11;
  chip.grid_height = 5;
  Placement placement{2};
  placement.at(ComponentId{0}) = {{0, 1}, false};   // x0..3
  placement.at(ComponentId{1}) = {{7, 1}, false};   // x7..10
  WashModel wash;
  RoutingGrid grid(chip, alloc, placement);
  Schedule s;
  s.transports = {RouterFixture::transport(0, 0, 1, 0.0, 2.0),
                  RouterFixture::transport(1, 0, 1, 1.0, 3.0)};
  RouterOptions opts;
  opts.wash_aware_weights = false;
  opts.conflict_aware = false;
  const auto result = route_transports(grid, s, wash, opts);
  EXPECT_GT(result.delays[1], 0.0);
  EXPECT_EQ(result.conflict_postponements, 1);
}

TEST(Router, TaskOrderFollowsStartTimes) {
  RouterFixture fx;
  auto grid = fx.grid();
  Schedule s;
  s.transports = {RouterFixture::transport(0, 0, 1, 10.0, 12.0),
                  RouterFixture::transport(1, 2, 1, 0.0, 2.0)};
  const auto result = route_transports(grid, s, fx.wash);
  // Routed order is by start time: transport 1 (t=0) first.
  ASSERT_EQ(result.paths.size(), 2u);
  EXPECT_EQ(result.paths[0].transport_id, 1);
  EXPECT_EQ(result.paths[1].transport_id, 0);
}

TEST(Router, DeterministicResults) {
  RouterFixture fx;
  Schedule s;
  s.transports = {RouterFixture::transport(0, 0, 1, 0.0, 2.0),
                  RouterFixture::transport(1, 2, 1, 0.0, 2.0),
                  RouterFixture::transport(2, 0, 2, 5.0, 7.0)};
  auto grid1 = fx.grid();
  auto grid2 = fx.grid();
  const auto r1 = route_transports(grid1, s, fx.wash);
  const auto r2 = route_transports(grid2, s, fx.wash);
  ASSERT_EQ(r1.paths.size(), r2.paths.size());
  for (std::size_t i = 0; i < r1.paths.size(); ++i) {
    EXPECT_EQ(r1.paths[i].cells, r2.paths[i].cells);
  }
}

TEST(Router, PathsAvoidFootprints) {
  RouterFixture fx;
  auto grid = fx.grid();
  Schedule s;
  s.transports = {RouterFixture::transport(0, 0, 1, 0.0, 2.0)};
  const auto result = route_transports(grid, s, fx.wash);
  for (const Point& p : result.paths[0].cells) {
    EXPECT_FALSE(grid.blocked(p)) << to_string(p);
  }
}

TEST(Router, OccupyConflictThrowsRoutingError) {
  // Regression: in release builds occupy() used to assert (a no-op under
  // NDEBUG) and silently keep a conflicting reservation. The only reachable
  // path to such a conflict is the 1000-iteration cap of
  // earliest_feasible_start: alternating one-second occupancy combs on two
  // adjacent corridor cells advance the feasible start by exactly one
  // second per iteration, so the cap returns a start that still overlaps
  // one comb — which occupy must reject loudly in every build type.
  Allocation alloc{AllocationSpec{2, 0, 0, 0}};
  ChipSpec chip;
  chip.grid_width = 11;
  chip.grid_height = 5;
  Placement placement{2};
  placement.at(ComponentId{0}) = {{0, 1}, false};  // x0..3, y1..3
  placement.at(ComponentId{1}) = {{7, 1}, false};  // x7..10, y1..3
  WashModel wash;
  RoutingGrid grid(chip, alloc, placement);
  // Wall off everything except the single corridor (4,2)-(5,2)-(6,2).
  for (int x = 0; x < chip.grid_width; ++x) {
    grid.cell(Point{x, 0}).blocked = true;
    grid.cell(Point{x, 4}).blocked = true;
  }
  for (int x = 4; x <= 6; ++x) {
    grid.cell(Point{x, 1}).blocked = true;
    grid.cell(Point{x, 3}).blocked = true;
  }
  // Combs: (4,2) busy on even seconds, (5,2) busy on odd seconds, well past
  // the 1000-iteration horizon.
  for (int k = 0; k <= 1500; ++k) {
    ASSERT_TRUE(grid.cell(Point{4, 2})
                    .occupancy.insert_disjoint({2.0 * k, 2.0 * k + 1.0}));
    ASSERT_TRUE(grid.cell(Point{5, 2})
                    .occupancy.insert_disjoint(
                        {2.0 * k + 1.0, 2.0 * k + 2.0}));
  }
  Schedule s;
  TransportTask t = RouterFixture::transport(0, 0, 1, 0.0, 1.0);
  t.transport_time = 1.0;  // hold exactly one second per cell
  s.transports = {t};
  RouterOptions opts;
  opts.wash_aware_weights = false;
  opts.conflict_aware = false;  // postponement mode hits the iteration cap
  EXPECT_THROW(route_transports(grid, s, wash, opts), RoutingError);
}

TEST(Router, StatsCountSearchEffort) {
  RouterFixture fx;
  auto grid = fx.grid();
  Schedule s;
  s.transports = {RouterFixture::transport(0, 0, 1, 0.0, 2.0),
                  RouterFixture::transport(1, 2, 1, 0.0, 2.0)};
  const auto result = route_transports(grid, s, fx.wash);
  EXPECT_EQ(result.stats.tasks_routed, 2u);
  EXPECT_GT(result.stats.nodes_expanded, 0u);
  EXPECT_GT(result.stats.heap_pushes, 0u);
  // One heuristic field per distinct target component (component 1 twice).
  EXPECT_EQ(result.stats.distance_fields_built, 1u);
}

TEST(RoutingResult, DistinctEdgesCountsSharingOnce) {
  RoutingResult result;
  RoutedPath a;
  a.from_component = 0;
  a.to_component = 1;
  a.cells = {{0, 0}, {1, 0}, {2, 0}};
  RoutedPath b = a;  // identical path: same component stubs, same edges
  result.paths = {a, b};
  // 2 cell-cell edges + 2 connection stubs, shared between both paths.
  EXPECT_EQ(result.distinct_channel_edges(), 4);
  EXPECT_EQ(result.total_routed_cells(), 4);
  EXPECT_DOUBLE_EQ(result.total_channel_length_mm(10.0), 40.0);
}

TEST(RoutingResult, ReversedPathSharesEdges) {
  RoutingResult result;
  RoutedPath a;
  a.from_component = 0;
  a.to_component = 1;
  a.cells = {{0, 0}, {1, 0}};
  RoutedPath b;
  b.from_component = 1;
  b.to_component = 0;
  b.cells = {{1, 0}, {0, 0}};  // same segment, opposite direction
  result.paths = {a, b};
  // 1 undirected edge + stubs: (c0,(0,0)), (c1,(1,0)) appear in both.
  EXPECT_EQ(result.distinct_channel_edges(), 3);
}

}  // namespace
}  // namespace fbmb
