// Generator validity and oracle behavior over generated scenarios.
//
// The acceptance bar for the fuzzing subsystem: every generated scenario
// is structurally valid (acyclic graph, positive durations, qualified
// components), serializes through the scenario text format losslessly,
// schedules, and passes the full differential oracle with zero
// divergence; and the oracle detects each known fault injection.

#include "testgen/generator.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/assay_parser.hpp"
#include "schedule/list_scheduler.hpp"
#include "schedule/validator.hpp"
#include "testgen/oracle.hpp"
#include "testgen/scenario.hpp"

namespace fbmb {
namespace {

TEST(Generator, IsDeterministic) {
  for (std::uint64_t i = 0; i < 20; ++i) {
    const Scenario a = generate_scenario(99, i);
    const Scenario b = generate_scenario(99, i);
    EXPECT_EQ(write_scenario(a), write_scenario(b)) << "index " << i;
  }
}

TEST(Generator, DistinctIndicesDiffer) {
  std::set<std::string> texts;
  for (std::uint64_t i = 0; i < 50; ++i) {
    texts.insert(write_scenario(generate_scenario(3, i)));
  }
  // Collisions would mean the fork_seed domain split is broken.
  EXPECT_EQ(texts.size(), 50u);
}

TEST(Generator, ScenariosAreStructurallyValid) {
  for (std::uint64_t i = 0; i < 100; ++i) {
    const Scenario s = generate_scenario(11, i);
    SCOPED_TRACE(s.name);
    EXPECT_FALSE(s.graph.validate().has_value());
    EXPECT_GE(s.graph.operation_count(), 4u);
    for (const auto& op : s.graph.operations()) {
      EXPECT_GT(op.duration, 0.0);
      EXPECT_GT(op.output.diffusion_coefficient, 0.0);
    }
    const Allocation allocation(s.allocation);
    for (const auto& op : s.graph.operations()) {
      bool qualified = false;
      for (const auto& comp : allocation.components()) {
        qualified |= comp.type == op.type;
      }
      EXPECT_TRUE(qualified) << "no component for op " << op.name;
    }
  }
}

TEST(Generator, ScenariosRoundTripThroughText) {
  for (std::uint64_t i = 0; i < 100; ++i) {
    const Scenario s = generate_scenario(5, i);
    const std::string text = write_scenario(s);
    const Scenario replayed = parse_scenario(text);
    // Byte-identical re-serialization is the round-trip criterion: it
    // covers every field, including exact double bits.
    EXPECT_EQ(write_scenario(replayed), text) << s.name;
  }
}

TEST(Generator, ScenarioTextIsAValidAssay) {
  for (std::uint64_t i = 0; i < 25; ++i) {
    const Scenario s = generate_scenario(21, i);
    // The stock assay parser must accept every corpus file as-is; the
    // scenario directives ride in comments it skips.
    const ParsedAssay assay = parse_assay(write_scenario(s));
    EXPECT_EQ(assay.graph.operation_count(), s.graph.operation_count());
    EXPECT_EQ(assay.graph.dependency_count(), s.graph.dependency_count());
  }
}

TEST(Generator, ScenariosScheduleAndValidate) {
  for (std::uint64_t i = 0; i < 50; ++i) {
    const Scenario s = generate_scenario(13, i);
    SCOPED_TRACE(s.name);
    const Allocation allocation(s.allocation);
    SchedulerOptions options;
    options.policy = s.knobs.policy;
    options.refine_storage = s.knobs.refine_storage;
    const Schedule schedule =
        schedule_bioassay(s.graph, allocation, s.wash, options);
    EXPECT_TRUE(
        validate_schedule(schedule, s.graph, allocation, s.wash).empty());
  }
}

TEST(Oracle, CleanScenariosPassDifferentially) {
  OracleOptions options;
  for (std::uint64_t i = 0; i < 50; ++i) {
    const Scenario s = generate_scenario(17, i);
    const OracleReport report = run_differential_oracle(s, options);
    EXPECT_TRUE(report.ok) << s.name << ": "
                           << (report.failures.empty()
                                   ? ""
                                   : report.failures.front());
  }
}

TEST(Oracle, DetectsScheduleFault) {
  OracleOptions options;
  options.inject = FaultInjection::kScheduleOffByOne;
  bool detected = false;
  for (std::uint64_t i = 0; i < 32 && !detected; ++i) {
    const OracleReport report =
        run_differential_oracle(generate_scenario(17, i), options);
    detected = !report.ok;
    if (detected) {
      EXPECT_NE(report.failures.front().find("scheduler"),
                std::string::npos);
    }
  }
  EXPECT_TRUE(detected);
}

TEST(Oracle, DetectsRouteFault) {
  OracleOptions options;
  options.inject = FaultInjection::kRouteDelayOffByOne;
  bool detected = false;
  for (std::uint64_t i = 0; i < 32 && !detected; ++i) {
    const OracleReport report =
        run_differential_oracle(generate_scenario(17, i), options);
    detected = !report.ok;
    if (detected) {
      EXPECT_NE(report.failures.front().find("router"), std::string::npos);
    }
  }
  EXPECT_TRUE(detected);
}

TEST(Oracle, ReportsTelemetry) {
  const Scenario s = generate_scenario(17, 0);
  const OracleReport report = run_differential_oracle(s);
  ASSERT_TRUE(report.ok);
  EXPECT_EQ(report.operations, s.graph.operation_count());
  EXPECT_GT(report.transports, 0u);
  EXPECT_GT(report.fixpoint_rounds, 0u);
}

TEST(Scenario, ParseRejectsMalformedDirective) {
  EXPECT_THROW(parse_scenario("# @chip 4\nop a mix 1\nallocate 1 0 0 0\n"),
               AssayParseError);
  EXPECT_THROW(parse_scenario("# @policy nonsense\nop a mix 1\n"
                              "allocate 1 0 0 0\n"),
               AssayParseError);
}

TEST(Scenario, LoadCorpusThrowsOnMissingDirectory) {
  EXPECT_THROW(load_corpus("/nonexistent/corpus/dir"), std::runtime_error);
}

}  // namespace
}  // namespace fbmb
