#include "graph/sequencing_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace fbmb {
namespace {

SequencingGraph diamond() {
  // a -> b, a -> c, b -> d, c -> d
  SequencingGraph g;
  const auto a = g.add_operation("a", ComponentType::kMixer, 1.0);
  const auto b = g.add_operation("b", ComponentType::kMixer, 2.0);
  const auto c = g.add_operation("c", ComponentType::kHeater, 3.0);
  const auto d = g.add_operation("d", ComponentType::kDetector, 4.0);
  g.add_dependency(a, b);
  g.add_dependency(a, c);
  g.add_dependency(b, d);
  g.add_dependency(c, d);
  return g;
}

TEST(SequencingGraph, AddOperationAssignsDenseIds) {
  SequencingGraph g;
  EXPECT_EQ(g.add_operation("x", ComponentType::kMixer, 1.0).value, 0);
  EXPECT_EQ(g.add_operation("y", ComponentType::kMixer, 1.0).value, 1);
  EXPECT_EQ(g.operation_count(), 2u);
}

TEST(SequencingGraph, DefaultFluidNamedAfterOperation) {
  SequencingGraph g;
  const auto id = g.add_operation("op7", ComponentType::kHeater, 2.0);
  EXPECT_EQ(g.operation(id).output.name, "op7_out");
  EXPECT_DOUBLE_EQ(g.operation(id).output.diffusion_coefficient,
                   diffusion::kSmallMolecule);
}

TEST(SequencingGraph, ExplicitFluid) {
  SequencingGraph g;
  const auto id = g.add_operation("op", ComponentType::kMixer, 1.0,
                                  Fluid{"virus", 5e-8});
  EXPECT_EQ(g.operation(id).output.name, "virus");
}

TEST(SequencingGraph, AddDependencyRejectsBadInput) {
  SequencingGraph g;
  const auto a = g.add_operation("a", ComponentType::kMixer, 1.0);
  const auto b = g.add_operation("b", ComponentType::kMixer, 1.0);
  EXPECT_TRUE(g.add_dependency(a, b));
  EXPECT_FALSE(g.add_dependency(a, b));              // duplicate
  EXPECT_FALSE(g.add_dependency(a, a));              // self loop
  EXPECT_FALSE(g.add_dependency(a, OperationId{9})); // missing endpoint
  EXPECT_FALSE(g.add_dependency(OperationId{-1}, b));
  EXPECT_EQ(g.dependency_count(), 1u);
}

TEST(SequencingGraph, ParentsAndChildren) {
  const auto g = diamond();
  EXPECT_TRUE(g.parents(OperationId{0}).empty());
  EXPECT_EQ(g.children(OperationId{0}).size(), 2u);
  EXPECT_EQ(g.parents(OperationId{3}).size(), 2u);
  EXPECT_TRUE(g.children(OperationId{3}).empty());
  EXPECT_TRUE(g.has_dependency(OperationId{0}, OperationId{1}));
  EXPECT_FALSE(g.has_dependency(OperationId{1}, OperationId{0}));
}

TEST(SequencingGraph, SourcesAndSinks) {
  const auto g = diamond();
  const auto sources = g.sources();
  const auto sinks = g.sinks();
  ASSERT_EQ(sources.size(), 1u);
  ASSERT_EQ(sinks.size(), 1u);
  EXPECT_EQ(sources[0].value, 0);
  EXPECT_EQ(sinks[0].value, 3);
}

TEST(SequencingGraph, DependenciesEnumeration) {
  const auto g = diamond();
  const auto deps = g.dependencies();
  EXPECT_EQ(deps.size(), 4u);
  EXPECT_NE(std::find(deps.begin(), deps.end(),
                      Dependency{OperationId{1}, OperationId{3}}),
            deps.end());
}

TEST(SequencingGraph, TopologicalOrderRespectsEdges) {
  const auto g = diamond();
  const auto order = g.topological_order();
  ASSERT_TRUE(order.has_value());
  ASSERT_EQ(order->size(), 4u);
  auto pos = [&](int id) {
    return std::find_if(order->begin(), order->end(),
                        [&](OperationId o) { return o.value == id; }) -
           order->begin();
  };
  for (const auto& dep : g.dependencies()) {
    EXPECT_LT(pos(dep.from.value), pos(dep.to.value));
  }
}

TEST(SequencingGraph, CycleDetection) {
  SequencingGraph g;
  const auto a = g.add_operation("a", ComponentType::kMixer, 1.0);
  const auto b = g.add_operation("b", ComponentType::kMixer, 1.0);
  const auto c = g.add_operation("c", ComponentType::kMixer, 1.0);
  g.add_dependency(a, b);
  g.add_dependency(b, c);
  EXPECT_TRUE(g.is_acyclic());
  g.add_dependency(c, a);
  EXPECT_FALSE(g.is_acyclic());
  EXPECT_FALSE(g.topological_order().has_value());
}

TEST(SequencingGraph, ValidateCatchesCycle) {
  SequencingGraph g;
  const auto a = g.add_operation("a", ComponentType::kMixer, 1.0);
  const auto b = g.add_operation("b", ComponentType::kMixer, 1.0);
  g.add_dependency(a, b);
  g.add_dependency(b, a);
  const auto err = g.validate();
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("cycle"), std::string::npos);
}

TEST(SequencingGraph, ValidateCatchesBadDuration) {
  SequencingGraph g;
  g.add_operation("bad", ComponentType::kMixer, 0.0);
  ASSERT_TRUE(g.validate().has_value());
}

TEST(SequencingGraph, ValidateCatchesBadDiffusion) {
  SequencingGraph g;
  g.add_operation("bad", ComponentType::kMixer, 1.0, Fluid{"f", 0.0});
  ASSERT_TRUE(g.validate().has_value());
}

TEST(SequencingGraph, ValidateAcceptsGoodGraph) {
  EXPECT_FALSE(diamond().validate().has_value());
}

TEST(SequencingGraph, EmptyGraph) {
  SequencingGraph g;
  EXPECT_TRUE(g.empty());
  EXPECT_TRUE(g.is_acyclic());
  EXPECT_TRUE(g.sources().empty());
  EXPECT_FALSE(g.validate().has_value());
}

TEST(SequencingGraph, DotExportMentionsAllOperations) {
  const auto g = diamond();
  const std::string dot = g.to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  for (const auto& op : g.operations()) {
    EXPECT_NE(dot.find(op.name), std::string::npos);
  }
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
}

}  // namespace
}  // namespace fbmb
