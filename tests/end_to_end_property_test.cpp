// The capstone property suite: for every benchmark in the extended suite
// (Table-I seven + the extra real-life assays), both flows must produce
// results that pass ALL four independent checkers — schedule validator,
// placement legality, routing re-simulation, and the discrete-event chip
// simulator — and the cross-flow dominance invariants must hold.

#include <gtest/gtest.h>

#include <map>

#include "bench_suite/benchmarks.hpp"
#include "core/comparison.hpp"
#include "route/grid.hpp"
#include "route/validator.hpp"
#include "schedule/validator.hpp"
#include "sim/chip_simulator.hpp"

namespace fbmb {
namespace {

class EndToEndTest : public ::testing::TestWithParam<int> {
 protected:
  static const std::vector<Benchmark>& suite() {
    static const auto benches = extended_benchmarks();
    return benches;
  }
  static const ComparisonRow& row(int index) {
    static std::map<int, ComparisonRow> cache;
    auto it = cache.find(index);
    if (it == cache.end()) {
      const Benchmark& bench = suite()[static_cast<std::size_t>(index)];
      it = cache.emplace(index,
                         compare_flows(bench.name, bench.graph,
                                       Allocation(bench.allocation),
                                       bench.wash))
               .first;
    }
    return it->second;
  }
};

TEST_P(EndToEndTest, AllFourCheckersPassOnBothFlows) {
  const Benchmark& bench = suite()[static_cast<std::size_t>(GetParam())];
  const Allocation alloc(bench.allocation);
  const ComparisonRow& r = row(GetParam());
  for (const SynthesisResult* result : {&r.ours, &r.baseline}) {
    const auto sched =
        validate_schedule(result->schedule, bench.graph, alloc, bench.wash);
    EXPECT_TRUE(sched.empty())
        << bench.name << ": " << (sched.empty() ? "" : sched.front());
    EXPECT_TRUE(result->placement.is_legal(alloc, result->chip))
        << bench.name;
    RoutingGrid fresh(result->chip, alloc, result->placement);
    const auto route =
        validate_routing(result->routing, result->schedule, fresh,
                         bench.wash);
    EXPECT_TRUE(route.empty())
        << bench.name << ": " << (route.empty() ? "" : route.front());
    const auto sim =
        simulate_chip(bench.graph, alloc, bench.wash, *result);
    EXPECT_TRUE(sim.ok) << bench.name << ": "
                        << (sim.violations.empty() ? ""
                                                   : sim.violations.front());
  }
}

TEST_P(EndToEndTest, DominanceInvariants) {
  const ComparisonRow& r = row(GetParam());
  EXPECT_LE(r.ours.completion_time, r.baseline.completion_time + 1e-9);
  EXPECT_GE(r.ours.utilization, r.baseline.utilization - 1e-9);
  EXPECT_LE(r.ours.total_cache_time, r.baseline.total_cache_time + 1e-9);
  // Wash-time dominance is the paper's Fig. 9 observation on ITS suite
  // (indices 0..6) and holds there; it is not an algorithmic guarantee —
  // the flow optimizes completion first, and on GlucosePanel that priority
  // trades a few seconds of channel wash for the better schedule.
  if (GetParam() < 7) {
    EXPECT_LE(r.ours.channel_wash_time,
              r.baseline.channel_wash_time + 1e-9);
  }
}

TEST_P(EndToEndTest, SimulatorAgreesWithReportedMetrics) {
  const Benchmark& bench = suite()[static_cast<std::size_t>(GetParam())];
  const Allocation alloc(bench.allocation);
  const ComparisonRow& r = row(GetParam());
  const auto sim = simulate_chip(bench.graph, alloc, bench.wash, r.ours);
  ASSERT_TRUE(sim.ok);
  EXPECT_NEAR(sim.stats.completion_time, r.ours.completion_time, 1e-6);
  EXPECT_NEAR(sim.stats.channel_cache_time, r.ours.total_cache_time, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    ExtendedSuite, EndToEndTest, ::testing::Range(0, 10),
    [](const ::testing::TestParamInfo<int>& info) {
      static const auto benches = extended_benchmarks();
      return benches[static_cast<std::size_t>(info.param)].name;
    });

TEST(ExtendedBenchmarks, ProteinSplitSizes) {
  for (int k = 1; k <= 3; ++k) {
    const auto bench = make_protein_split(k);
    const int mixes = (1 << (k + 1)) - 1;
    const int detects = 1 << k;
    EXPECT_EQ(bench.graph.operation_count(),
              static_cast<std::size_t>(mixes + detects))
        << "k=" << k;
    EXPECT_FALSE(bench.graph.validate().has_value());
  }
}

TEST(ExtendedBenchmarks, GlucosePanelStructure) {
  const auto bench = make_glucose_panel();
  EXPECT_EQ(bench.graph.operation_count(), 12u);
  EXPECT_EQ(bench.graph.sinks().size(), 3u);    // three detections
  EXPECT_EQ(bench.graph.sources().size(), 1u);  // one sample
  EXPECT_FALSE(bench.graph.validate().has_value());
}

TEST(ExtendedBenchmarks, ListContainsTen) {
  const auto all = extended_benchmarks();
  ASSERT_EQ(all.size(), 10u);
  EXPECT_EQ(all[7].name, "ProteinSplit2");
  EXPECT_EQ(all[9].name, "GlucosePanel");
}

}  // namespace
}  // namespace fbmb
