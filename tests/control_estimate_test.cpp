#include "route/control_estimate.hpp"

#include <gtest/gtest.h>

#include "bench_suite/benchmarks.hpp"
#include "core/synthesis.hpp"

namespace fbmb {
namespace {

RoutedPath straight_path(int from, int to, std::vector<Point> cells,
                         double wash = 0.0) {
  RoutedPath p;
  p.transport_id = 0;
  p.from_component = from;
  p.to_component = to;
  p.cells = std::move(cells);
  p.wash_duration = wash;
  return p;
}

TEST(ControlEstimate, EmptyRouting) {
  const ControlEstimate est = estimate_control_layer({}, {});
  EXPECT_EQ(est.valve_count, 0);
  EXPECT_EQ(est.switching_count, 0);
  EXPECT_DOUBLE_EQ(est.switches_per_valve, 0.0);
}

TEST(ControlEstimate, StraightPathHasNoJunctions) {
  RoutingResult routing;
  routing.paths = {straight_path(0, 1, {{0, 0}, {1, 0}, {2, 0}, {3, 0}})};
  const ControlEstimate est = estimate_control_layer(routing, {});
  EXPECT_EQ(est.junction_cells, 0);
  EXPECT_EQ(est.port_valves, 2);       // the two port stubs
  EXPECT_EQ(est.valve_count, 2);
  // One pass, 2 port valves: 2 * 2 = 4 switch events.
  EXPECT_EQ(est.switching_count, 4);
}

TEST(ControlEstimate, BendIsNotAJunction) {
  RoutingResult routing;
  routing.paths = {straight_path(0, 1, {{0, 0}, {1, 0}, {1, 1}})};
  const ControlEstimate est = estimate_control_layer(routing, {});
  EXPECT_EQ(est.junction_cells, 0);  // corner cell has 2 directions
}

TEST(ControlEstimate, TJunctionDetected) {
  // Two paths sharing cell (1,0) from three directions.
  RoutingResult routing;
  routing.paths = {
      straight_path(0, 1, {{0, 0}, {1, 0}, {2, 0}}),
      straight_path(2, 1, {{1, 1}, {1, 0}, {2, 0}}),
  };
  const ControlEstimate est = estimate_control_layer(routing, {});
  EXPECT_EQ(est.junction_cells, 1);  // (1,0): left, right, up
  // 3 junction valves + port stubs.
  EXPECT_GE(est.valve_count, 3 + 3);
}

TEST(ControlEstimate, WashFlushDoublesPathSwitching) {
  RoutingResult clean, washed;
  clean.paths = {straight_path(0, 1, {{0, 0}, {1, 0}})};
  washed.paths = {straight_path(0, 1, {{0, 0}, {1, 0}}, /*wash=*/2.0)};
  const auto a = estimate_control_layer(clean, {});
  const auto b = estimate_control_layer(washed, {});
  EXPECT_EQ(b.switching_count, 2 * a.switching_count);
}

TEST(ControlEstimate, SharedPortStubCountedOnce) {
  RoutingResult routing;
  routing.paths = {
      straight_path(0, 1, {{0, 0}, {1, 0}}),
      straight_path(0, 1, {{0, 0}, {1, 0}}),  // identical route
  };
  const ControlEstimate est = estimate_control_layer(routing, {});
  EXPECT_EQ(est.port_valves, 2);  // same stubs, deduplicated
  // But both passes switch: 2 tasks * 2 valves * 2 events.
  EXPECT_EQ(est.switching_count, 8);
}

TEST(ControlMultiplexing, EmptyRouting) {
  const MultiplexingEstimate est = estimate_control_multiplexing({});
  EXPECT_EQ(est.valve_sites, 0);
  EXPECT_EQ(est.control_lines, 0);
}

TEST(ControlMultiplexing, IdenticalActivationSetsShareOneLine) {
  // Two stubs of the same single task have identical activation sets
  // ({0}), so both valve sites fit on one control line.
  RoutingResult routing;
  routing.paths = {straight_path(0, 1, {{0, 0}, {1, 0}})};
  const MultiplexingEstimate est = estimate_control_multiplexing(routing);
  EXPECT_EQ(est.valve_sites, 2);
  EXPECT_EQ(est.control_lines, 1);
  EXPECT_DOUBLE_EQ(est.sharing_ratio, 2.0);
}

TEST(ControlMultiplexing, DistinctActivationSetsNeedDistinctLines) {
  RoutingResult routing;
  RoutedPath a = straight_path(0, 1, {{0, 0}, {1, 0}});
  a.transport_id = 0;
  RoutedPath b = straight_path(2, 3, {{0, 5}, {1, 5}});
  b.transport_id = 1;
  routing.paths = {a, b};
  const MultiplexingEstimate est = estimate_control_multiplexing(routing);
  EXPECT_EQ(est.valve_sites, 4);
  EXPECT_EQ(est.control_lines, 2);  // {0} and {1}
}

TEST(ControlMultiplexing, SharingNeverExceedsSiteCount) {
  const auto bench = make_cpa();
  const Allocation alloc(bench.allocation);
  const auto result = synthesize_dcsa(bench.graph, alloc, bench.wash);
  const MultiplexingEstimate est =
      estimate_control_multiplexing(result.routing);
  EXPECT_GT(est.valve_sites, 0);
  EXPECT_GT(est.control_lines, 0);
  EXPECT_LE(est.control_lines, est.valve_sites);
  EXPECT_GE(est.sharing_ratio, 1.0);
}

TEST(ControlEstimate, RealFlowsProducePlausibleNumbers) {
  const auto bench = make_cpa();
  const Allocation alloc(bench.allocation);
  const auto ours = synthesize_dcsa(bench.graph, alloc, bench.wash);
  const auto est = estimate_control_layer(ours.routing, ours.schedule);
  EXPECT_GT(est.valve_count, 0);
  EXPECT_GT(est.switching_count, 0);
  EXPECT_GT(est.switches_per_valve, 0.0);
  EXPECT_LE(est.junction_cells * 3, est.valve_count);
}

}  // namespace
}  // namespace fbmb
