#include "service/http.hpp"

#include <gtest/gtest.h>

#include <string>

namespace fbmb::service {
namespace {

ParseStatus feed_all(HttpRequestParser& parser, const std::string& bytes) {
  return parser.feed(bytes.data(), bytes.size());
}

TEST(HttpRequestParser, ParsesSimpleGet) {
  HttpRequestParser parser;
  ASSERT_EQ(feed_all(parser, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"),
            ParseStatus::kDone);
  EXPECT_EQ(parser.request().method, "GET");
  EXPECT_EQ(parser.request().target, "/healthz");
  EXPECT_EQ(parser.request().version, "HTTP/1.1");
  EXPECT_TRUE(parser.request().body.empty());
  EXPECT_TRUE(parser.request().keep_alive());
}

TEST(HttpRequestParser, ParsesPostBodyFedByteByByte) {
  HttpRequestParser parser;
  const std::string wire =
      "POST /synthesize HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd";
  for (char c : wire) parser.feed(&c, 1);
  ASSERT_EQ(parser.status(), ParseStatus::kDone);
  EXPECT_EQ(parser.request().method, "POST");
  EXPECT_EQ(parser.request().body, "abcd");
}

TEST(HttpRequestParser, HeaderLookupIsCaseInsensitive) {
  HttpRequestParser parser;
  ASSERT_EQ(feed_all(parser,
                     "GET / HTTP/1.1\r\nX-Thing:  padded \r\n\r\n"),
            ParseStatus::kDone);
  const std::string* value = parser.request().header("x-THING");
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(*value, "padded");
  EXPECT_EQ(parser.request().header("missing"), nullptr);
}

TEST(HttpRequestParser, KeepAliveSemanticsPerVersion) {
  HttpRequestParser parser;
  ASSERT_EQ(feed_all(parser, "GET / HTTP/1.0\r\n\r\n"), ParseStatus::kDone);
  EXPECT_FALSE(parser.request().keep_alive());

  parser.reset();
  ASSERT_EQ(
      feed_all(parser, "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"),
      ParseStatus::kDone);
  EXPECT_TRUE(parser.request().keep_alive());

  parser.reset();
  ASSERT_EQ(feed_all(parser,
                     "GET / HTTP/1.1\r\nConnection: close\r\n\r\n"),
            ParseStatus::kDone);
  EXPECT_FALSE(parser.request().keep_alive());
}

TEST(HttpRequestParser, PipelinedRequestsSurviveReset) {
  HttpRequestParser parser;
  ASSERT_EQ(feed_all(parser,
                     "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n"),
            ParseStatus::kDone);
  EXPECT_EQ(parser.request().target, "/a");
  parser.reset();
  ASSERT_EQ(parser.status(), ParseStatus::kDone);
  EXPECT_EQ(parser.request().target, "/b");
  parser.reset();
  EXPECT_EQ(parser.status(), ParseStatus::kNeedMore);
}

TEST(HttpRequestParser, RejectsMalformedStartLines) {
  for (const char* wire : {
           "GET\r\n\r\n",                           // one part
           "GET / HTTP/1.1 extra\r\n\r\n",          // four parts
           "GET / HTTP/2.0\r\n\r\n",                // unsupported version
           "G@T / HTTP/1.1\r\n\r\n",                // non-token method
           "GET /a b HTTP/1.1\r\n\r\n",             // space in target
           "GET / HTTP/1.1\nHost: x\n\n",           // bare LF line ending
       }) {
    HttpRequestParser parser;
    EXPECT_EQ(feed_all(parser, wire), ParseStatus::kBadRequest) << wire;
    EXPECT_FALSE(parser.error().empty()) << wire;
  }
}

TEST(HttpRequestParser, RejectsMalformedHeaders) {
  for (const char* wire : {
           "GET / HTTP/1.1\r\nNoColon\r\n\r\n",
           "GET / HTTP/1.1\r\nBad Name: x\r\n\r\n",
           "GET / HTTP/1.1\r\nA: 1\r\n  folded\r\n\r\n",  // obs-fold
           "GET / HTTP/1.1\r\nContent-Length: two\r\n\r\n",
           "GET / HTTP/1.1\r\nContent-Length: 1\r\n"
           "Content-Length: 2\r\n\r\n",
           "GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
       }) {
    HttpRequestParser parser;
    EXPECT_EQ(feed_all(parser, wire), ParseStatus::kBadRequest) << wire;
  }
}

TEST(HttpRequestParser, EnforcesEveryBound) {
  HttpLimits limits;
  limits.max_request_line = 32;
  limits.max_head_bytes = 100;
  limits.max_headers = 2;
  limits.max_body = 8;

  {
    HttpRequestParser parser(limits);
    const std::string wire =
        "GET /" + std::string(64, 'a') + " HTTP/1.1\r\n\r\n";
    EXPECT_EQ(feed_all(parser, wire), ParseStatus::kBadRequest);
  }
  {
    HttpRequestParser parser(limits);
    EXPECT_EQ(feed_all(parser,
                       "GET / HTTP/1.1\r\nA: 1\r\nB: 2\r\nC: 3\r\n\r\n"),
              ParseStatus::kBadRequest);
  }
  {
    HttpRequestParser parser(limits);
    std::string wire = "GET / HTTP/1.1\r\n";
    wire += "Long-Header-Name-Padding-Padding: value value value\r\n";
    wire += "Another-Long-Header-Name-Padding: value value value\r\n\r\n";
    EXPECT_EQ(feed_all(parser, wire), ParseStatus::kBadRequest);
  }
  {
    HttpRequestParser parser(limits);
    EXPECT_EQ(
        feed_all(parser,
                 "POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789"),
        ParseStatus::kTooLarge);
  }
}

TEST(HttpRequestParser, TerminalStatusIsSticky) {
  HttpRequestParser parser;
  ASSERT_EQ(feed_all(parser, "junk\r\n\r\n"), ParseStatus::kBadRequest);
  EXPECT_EQ(feed_all(parser, "GET / HTTP/1.1\r\n\r\n"),
            ParseStatus::kBadRequest);
}

TEST(HttpResponse, SerializeRoundTripsThroughResponseParser) {
  HttpResponse response;
  response.status = 429;
  response.body = "{\"error\": \"full\"}";
  response.headers.emplace_back("Retry-After", "1");
  const std::string wire = response.serialize(/*keep_alive=*/false);

  HttpResponseParser parser;
  ASSERT_EQ(parser.feed(wire.data(), wire.size()), ParseStatus::kDone);
  EXPECT_EQ(parser.message().status, 429);
  EXPECT_EQ(parser.message().body, response.body);
  const std::string* retry = parser.message().header("retry-after");
  ASSERT_NE(retry, nullptr);
  EXPECT_EQ(*retry, "1");
  const std::string* conn = parser.message().header("Connection");
  ASSERT_NE(conn, nullptr);
  EXPECT_EQ(*conn, "close");
}

TEST(HttpResponse, EveryServiceStatusHasAReason) {
  for (int status : {200, 400, 404, 405, 413, 429, 500, 503, 504}) {
    EXPECT_STRNE(http_status_reason(status), "") << status;
  }
}

}  // namespace
}  // namespace fbmb::service
