// Shrinker determinism and minimality.
//
// The contract that makes shrunk repros committable as regression tests:
// the same failing scenario and the same (deterministic) predicate always
// shrink to the same minimal repro, byte-for-byte; and for the known
// fault injections the minimal repro is small (at most 8 operations, in
// practice 2-3).

#include "testgen/shrinker.hpp"

#include <gtest/gtest.h>

#include "testgen/generator.hpp"
#include "testgen/oracle.hpp"

namespace fbmb {
namespace {

/// First generated scenario on which the injected fault fires.
Scenario find_failing(const OracleOptions& options) {
  for (std::uint64_t i = 0; i < 64; ++i) {
    Scenario s = generate_scenario(1, i);
    if (!run_differential_oracle(s, options).ok) return s;
  }
  ADD_FAILURE() << "no scenario triggered the injection";
  return generate_scenario(1, 0);
}

FailurePredicate oracle_fails(const OracleOptions& options) {
  return [options](const Scenario& candidate) {
    return !run_differential_oracle(candidate, options).ok;
  };
}

TEST(Shrinker, RemoveOperationRenumbersAndDropsEdges) {
  const Scenario s = generate_scenario(1, 0);
  const std::size_t ops = s.graph.operation_count();
  const Scenario out = remove_operation(s, 0);
  EXPECT_EQ(out.graph.operation_count(), ops - 1);
  EXPECT_FALSE(out.graph.validate().has_value());
  for (const auto& dep : out.graph.dependencies()) {
    EXPECT_LT(dep.from.value, static_cast<int>(ops - 1));
    EXPECT_LT(dep.to.value, static_cast<int>(ops - 1));
  }
}

TEST(Shrinker, RemoveDependencyKeepsOperations) {
  const Scenario s = generate_scenario(1, 0);
  ASSERT_GT(s.graph.dependency_count(), 0u);
  const Scenario out = remove_dependency(s, 0);
  EXPECT_EQ(out.graph.operation_count(), s.graph.operation_count());
  EXPECT_EQ(out.graph.dependency_count(), s.graph.dependency_count() - 1);
}

TEST(Shrinker, ShrinksInjectedScheduleFaultToMinimalRepro) {
  OracleOptions options;
  options.inject = FaultInjection::kScheduleOffByOne;
  const Scenario failing = find_failing(options);
  ShrinkStats stats;
  const Scenario repro =
      shrink_scenario(failing, oracle_fails(options), &stats);
  // The injection anchors on an operation with two or more parents, so
  // the smallest reproducer is a parent pair plus the join: 3 operations.
  EXPECT_LE(repro.graph.operation_count(), 8u);
  EXPECT_GE(repro.graph.operation_count(), 3u);
  EXPECT_FALSE(run_differential_oracle(repro, options).ok);
  EXPECT_GT(stats.attempts, 0);
  EXPECT_GT(stats.accepted, 0);
}

TEST(Shrinker, ShrinksInjectedRouteFaultToMinimalRepro) {
  OracleOptions options;
  options.inject = FaultInjection::kRouteDelayOffByOne;
  const Scenario failing = find_failing(options);
  const Scenario repro = shrink_scenario(failing, oracle_fails(options));
  // One transport suffices: a producer and a consumer.
  EXPECT_LE(repro.graph.operation_count(), 8u);
  EXPECT_GE(repro.graph.operation_count(), 2u);
  EXPECT_FALSE(run_differential_oracle(repro, options).ok);
}

TEST(Shrinker, IsDeterministic) {
  OracleOptions options;
  options.inject = FaultInjection::kScheduleOffByOne;
  const Scenario failing = find_failing(options);
  const Scenario a = shrink_scenario(failing, oracle_fails(options));
  const Scenario b = shrink_scenario(failing, oracle_fails(options));
  // Same seed, same injection: byte-identical minimal repro text.
  EXPECT_EQ(write_scenario(a), write_scenario(b));
}

TEST(Shrinker, ShrunkReproSurvivesSerializationRoundTrip) {
  OracleOptions options;
  options.inject = FaultInjection::kScheduleOffByOne;
  const Scenario repro =
      shrink_scenario(find_failing(options), oracle_fails(options));
  const Scenario replayed = parse_scenario(write_scenario(repro));
  EXPECT_FALSE(run_differential_oracle(replayed, options).ok);
  EXPECT_EQ(write_scenario(replayed), write_scenario(repro));
}

TEST(Shrinker, ThrowingPredicateCountsAsNotReproducing) {
  const Scenario s = generate_scenario(1, 0);
  int calls = 0;
  // Predicate: only the untouched scenario "fails"; every edited
  // candidate throws. The shrinker must return the original unchanged.
  const Scenario out = shrink_scenario(
      s, [&](const Scenario& candidate) -> bool {
        ++calls;
        if (write_scenario(candidate) != write_scenario(s)) {
          throw std::runtime_error("infeasible");
        }
        return true;
      });
  EXPECT_GT(calls, 0);
  EXPECT_EQ(write_scenario(out), write_scenario(s));
}

}  // namespace
}  // namespace fbmb
