#include "util/logging.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace fbmb {
namespace {

/// RAII guard restoring global logger state after each test.
class LoggerGuard {
 public:
  LoggerGuard() : saved_level_(Logger::instance().level()) {}
  ~LoggerGuard() {
    Logger::instance().set_level(saved_level_);
    Logger::instance().set_sink(nullptr);
  }

 private:
  LogLevel saved_level_;
};

TEST(Logger, SinkReceivesMessagesAtOrAboveLevel) {
  LoggerGuard guard;
  std::vector<std::string> messages;
  Logger::instance().set_level(LogLevel::kInfo);
  Logger::instance().set_sink([&](LogLevel, const std::string& m) {
    messages.push_back(m);
  });
  FBMB_DEBUG("hidden " << 1);
  FBMB_INFO("shown " << 2);
  FBMB_WARN("also shown");
  ASSERT_EQ(messages.size(), 2u);
  EXPECT_EQ(messages[0], "shown 2");
  EXPECT_EQ(messages[1], "also shown");
}

TEST(Logger, OffSilencesEverything) {
  LoggerGuard guard;
  int count = 0;
  Logger::instance().set_level(LogLevel::kOff);
  Logger::instance().set_sink([&](LogLevel, const std::string&) { ++count; });
  FBMB_ERROR("nope");
  FBMB_WARN("nope");
  EXPECT_EQ(count, 0);
}

TEST(Logger, StreamExpressionIsLazy) {
  LoggerGuard guard;
  Logger::instance().set_level(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return std::string("x");
  };
  FBMB_DEBUG(expensive());  // below level: must not evaluate
  EXPECT_EQ(evaluations, 0);
  Logger::instance().set_sink([](LogLevel, const std::string&) {});
  FBMB_ERROR(expensive());
  EXPECT_EQ(evaluations, 1);
}

TEST(Logger, LevelNames) {
  EXPECT_STREQ(Logger::level_name(LogLevel::kDebug), "debug");
  EXPECT_STREQ(Logger::level_name(LogLevel::kInfo), "info");
  EXPECT_STREQ(Logger::level_name(LogLevel::kWarning), "warn");
  EXPECT_STREQ(Logger::level_name(LogLevel::kError), "error");
}

}  // namespace
}  // namespace fbmb
