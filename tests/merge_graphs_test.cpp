#include "graph/graph_algorithms.hpp"

#include <gtest/gtest.h>

#include "bench_suite/benchmarks.hpp"
#include "schedule/list_scheduler.hpp"
#include "schedule/validator.hpp"

namespace fbmb {
namespace {

TEST(MergeGraphs, DisjointUnionSizes) {
  const auto pcr = make_pcr();
  const auto ivd = make_ivd();
  const auto merged = merge_graphs({&pcr.graph, &ivd.graph});
  EXPECT_EQ(merged.operation_count(),
            pcr.graph.operation_count() + ivd.graph.operation_count());
  EXPECT_EQ(merged.dependency_count(),
            pcr.graph.dependency_count() + ivd.graph.dependency_count());
  EXPECT_FALSE(merged.validate().has_value());
}

TEST(MergeGraphs, DefaultPrefixesNumbered) {
  const auto pcr = make_pcr();
  const auto merged = merge_graphs({&pcr.graph, &pcr.graph});
  EXPECT_EQ(merged.operation(OperationId{0}).name, "a1:m1");
  EXPECT_EQ(merged.operation(OperationId{7}).name, "a2:m1");
}

TEST(MergeGraphs, CustomPrefixes) {
  const auto pcr = make_pcr();
  const auto merged = merge_graphs({&pcr.graph}, {"x:"});
  EXPECT_EQ(merged.operation(OperationId{0}).name, "x:m1");
}

TEST(MergeGraphs, EdgesStayWithinTheirAssay) {
  const auto pcr = make_pcr();
  const auto ivd = make_ivd();
  const auto merged = merge_graphs({&pcr.graph, &ivd.graph});
  const int boundary = static_cast<int>(pcr.graph.operation_count());
  for (const auto& dep : merged.dependencies()) {
    EXPECT_EQ(dep.from.value < boundary, dep.to.value < boundary);
  }
}

TEST(MergeGraphs, EmptyInput) {
  const auto merged = merge_graphs({});
  EXPECT_TRUE(merged.empty());
}

TEST(MergeGraphs, PreservesFluidsAndDurations) {
  const auto cpa = make_cpa();
  const auto merged = merge_graphs({&cpa.graph});
  for (std::size_t i = 0; i < cpa.graph.operation_count(); ++i) {
    const OperationId id{static_cast<int>(i)};
    EXPECT_DOUBLE_EQ(merged.operation(id).duration,
                     cpa.graph.operation(id).duration);
    EXPECT_DOUBLE_EQ(merged.operation(id).output.diffusion_coefficient,
                     cpa.graph.operation(id).output.diffusion_coefficient);
  }
}

TEST(MergeGraphs, MergedAssayScheduleValid) {
  const auto pcr = make_pcr();
  const auto ivd = make_ivd();
  const auto merged = merge_graphs({&pcr.graph, &ivd.graph});
  const Allocation alloc(AllocationSpec{3, 0, 0, 2});
  WashModel wash = ivd.wash;
  const auto schedule = schedule_bioassay(merged, alloc, wash);
  const auto errors = validate_schedule(schedule, merged, alloc, wash);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
  // Concurrent execution is no slower than either assay alone and
  // (trivially) no faster than the longer of the two.
  const auto pcr_alone =
      schedule_bioassay(pcr.graph, Allocation(pcr.allocation), pcr.wash);
  EXPECT_GE(schedule.completion_time, pcr_alone.completion_time - 1e-9);
}

}  // namespace
}  // namespace fbmb
