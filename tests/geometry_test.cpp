#include "util/geometry.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace fbmb {
namespace {

TEST(Point, ComparisonAndArithmetic) {
  const Point a{1, 2};
  const Point b{3, -1};
  EXPECT_EQ(a + b, (Point{4, 1}));
  EXPECT_EQ(b - a, (Point{2, -3}));
  EXPECT_LT(a, b);  // lexicographic: x first
  EXPECT_EQ(a, (Point{1, 2}));
  EXPECT_NE(a, b);
}

TEST(Point, ManhattanDistance) {
  EXPECT_EQ(manhattan_distance(Point{0, 0}, Point{0, 0}), 0);
  EXPECT_EQ(manhattan_distance(Point{0, 0}, Point{3, 4}), 7);
  EXPECT_EQ(manhattan_distance(Point{-2, -2}, Point{2, 2}), 8);
  // Symmetry.
  EXPECT_EQ(manhattan_distance(Point{1, 5}, Point{4, 1}),
            manhattan_distance(Point{4, 1}, Point{1, 5}));
}

TEST(Point, HashDistinguishesCoordinates) {
  std::unordered_set<Point> set;
  for (int x = -4; x <= 4; ++x) {
    for (int y = -4; y <= 4; ++y) {
      set.insert(Point{x, y});
    }
  }
  EXPECT_EQ(set.size(), 81u);
  EXPECT_TRUE(set.contains(Point{0, 0}));
  EXPECT_FALSE(set.contains(Point{5, 5}));
}

TEST(Rect, AccessorsAreHalfOpen) {
  const Rect r{2, 3, 4, 5};
  EXPECT_EQ(r.left(), 2);
  EXPECT_EQ(r.right(), 6);
  EXPECT_EQ(r.bottom(), 3);
  EXPECT_EQ(r.top(), 8);
  EXPECT_EQ(r.area(), 20);
  EXPECT_TRUE(r.contains(Point{2, 3}));
  EXPECT_TRUE(r.contains(Point{5, 7}));
  EXPECT_FALSE(r.contains(Point{6, 3}));  // right edge exclusive
  EXPECT_FALSE(r.contains(Point{2, 8}));  // top edge exclusive
}

TEST(Rect, ContainsRect) {
  const Rect outer{0, 0, 10, 10};
  EXPECT_TRUE(outer.contains(Rect{0, 0, 10, 10}));
  EXPECT_TRUE(outer.contains(Rect{2, 2, 3, 3}));
  EXPECT_FALSE(outer.contains(Rect{8, 8, 3, 3}));
  EXPECT_FALSE(outer.contains(Rect{-1, 0, 2, 2}));
}

TEST(Rect, OverlapIsStrict) {
  const Rect a{0, 0, 4, 4};
  EXPECT_TRUE(a.overlaps(Rect{3, 3, 4, 4}));
  EXPECT_FALSE(a.overlaps(Rect{4, 0, 2, 2}));  // touching edges don't overlap
  EXPECT_FALSE(a.overlaps(Rect{0, 4, 2, 2}));
  EXPECT_TRUE(a.overlaps(a));
  // Symmetry.
  const Rect b{2, -1, 3, 3};
  EXPECT_EQ(a.overlaps(b), b.overlaps(a));
}

TEST(Rect, InflatedGrowsEverySide) {
  const Rect r{5, 5, 2, 3};
  const Rect big = r.inflated(2);
  EXPECT_EQ(big, (Rect{3, 3, 6, 7}));
  EXPECT_EQ(r.inflated(0), r);
}

TEST(Rect, CenterAndCenterDistance) {
  const Rect a{0, 0, 4, 4};
  const Rect b{10, 0, 4, 4};
  EXPECT_EQ(a.center(), (Point{2, 2}));
  EXPECT_EQ(manhattan_distance(a, b), 10);
}

TEST(Rect, ZeroSizeRectContainsNothing) {
  const Rect r{3, 3, 0, 0};
  EXPECT_FALSE(r.contains(Point{3, 3}));
  EXPECT_FALSE(r.overlaps(Rect{0, 0, 10, 10}));
}

TEST(GeometryToString, Formats) {
  EXPECT_EQ(to_string(Point{1, -2}), "(1,-2)");
  EXPECT_EQ(to_string(Rect{0, 1, 2, 3}), "[0,1 2x3]");
}

}  // namespace
}  // namespace fbmb
