// Speculative parallel transport routing vs the serial reference.
//
// The parallel router is determinism-by-construction: workers search
// transports against an immutable snapshot of round-start grid state,
// and a single committer walks the canonical serial order, replaying a
// speculative path only when its recorded probe footprint re-verifies
// against the actually committed grid — otherwise it searches inline,
// exactly like the serial router. So the final (Schedule, RoutingResult)
// pair must be bit-identical to route_until_consistent_reference at any
// thread count, on any host, under any executor schedule.
//
// The tests here pin all three protocol paths deterministically (no
// reliance on OS scheduling or core count):
//   * the real ThreadPool executor across a {1, 2, 4, 8} thread matrix,
//   * a workers-first executor that forces every dirty task through the
//     speculation verify (commit or mispredict, never steal), and
//   * a committer-first executor that forces the steal/fallback path
//     for every task (workers arrive after the round is over).
// Plus the ParallelFlowStats spill round-trip and its backward compat.

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "bench_suite/benchmarks.hpp"
#include "core/flow_core.hpp"
#include "place/constructive_placer.hpp"
#include "place/sa_placer.hpp"
#include "runtime/result_io.hpp"
#include "runtime/thread_pool.hpp"
#include "schedule/list_scheduler.hpp"

namespace fbmb {
namespace {

using Executor = std::function<void(std::vector<std::function<void()>>&)>;

struct Scenario {
  std::string label;
  Allocation alloc;
  Schedule schedule;
  ChipSpec chip;
  Placement placement;
  RouterOptions router;
};

Scenario prepare_dcsa(const Benchmark& bench) {
  Scenario s;
  s.label = bench.name + "/dcsa";
  s.alloc = Allocation(bench.allocation);
  SchedulerOptions sched;
  sched.policy = BindingPolicy::kDcsa;
  sched.refine_storage = true;
  s.schedule = schedule_bioassay(bench.graph, s.alloc, bench.wash, sched);
  s.chip = derive_grid(ChipSpec{}, allocation_area(s.alloc, 1));
  PlacerOptions placer;
  placer.restarts = 1;
  s.placement =
      place_components(s.alloc, s.schedule, bench.wash, s.chip, placer);
  return s;
}

Scenario prepare_baseline(const Benchmark& bench) {
  Scenario s;
  s.label = bench.name + "/baseline";
  s.alloc = Allocation(bench.allocation);
  SchedulerOptions sched;
  sched.policy = BindingPolicy::kBaseline;
  sched.refine_storage = false;
  s.schedule = schedule_bioassay(bench.graph, s.alloc, bench.wash, sched);
  s.chip = derive_grid(ChipSpec{}, allocation_area(s.alloc, 1));
  s.placement = place_components_baseline(s.alloc, s.schedule, s.chip,
                                          ConstructivePlacerOptions{});
  s.router.wash_aware_weights = false;
  return s;
}

struct ParallelRun {
  Schedule schedule;
  RoutingResult routing;
  FlowStats flow;
};

ParallelRun run_parallel(const Scenario& s, const Benchmark& bench,
                         int threads, const Executor& executor) {
  ParallelRun run;
  run.schedule = s.schedule;
  RouterOptions router = s.router;
  router.route_threads = threads;
  router.route_executor = executor;
  StageTimes stages;
  run.routing = route_until_consistent(run.schedule, bench.graph, s.alloc,
                                       s.chip, s.placement, bench.wash,
                                       router, stages, {}, &run.flow);
  return run;
}

ParallelRun run_reference(const Scenario& s, const Benchmark& bench) {
  ParallelRun run;
  run.schedule = s.schedule;
  StageTimes stages;
  run.routing = route_until_consistent_reference(
      run.schedule, bench.graph, s.alloc, s.chip, s.placement, bench.wash,
      s.router, stages, {});
  return run;
}

/// Runs the workers to completion before the committer ever starts: every
/// position gets speculated, so the committer's dirty tasks all take the
/// verify path (commit or mispredict), never the steal path.
void workers_first(std::vector<std::function<void()>>& tasks) {
  for (std::size_t i = 1; i < tasks.size(); ++i) tasks[i]();
  tasks[0]();
}

/// Runs the committer to completion first: it steals every position
/// (serial fallback for each dirty task) and the late workers see the
/// abort flag / exhausted claim cursor and exit without searching.
void committer_first(std::vector<std::function<void()>>& tasks) {
  for (std::size_t i = 0; i < tasks.size(); ++i) tasks[i]();
}

void expect_identical(const ParallelRun& got, const ParallelRun& want,
                      const std::string& what) {
  EXPECT_TRUE(identical_schedules(got.schedule, want.schedule)) << what;
  EXPECT_TRUE(identical_routing(got.routing, want.routing)) << what;
}

/// The real executor at every thread count in the matrix: bit-identical
/// output regardless of how the OS interleaves workers and committer.
void run_thread_matrix(const Benchmark& bench) {
  ThreadPool pool(8);
  const Executor executor =
      [&pool](std::vector<std::function<void()>>& tasks) {
        parallel_invoke(pool, tasks);
      };
  for (const Scenario& s : {prepare_dcsa(bench), prepare_baseline(bench)}) {
    SCOPED_TRACE(s.label);
    const ParallelRun reference = run_reference(s, bench);
    for (int threads : {1, 2, 4, 8}) {
      const ParallelRun par = run_parallel(s, bench, threads, executor);
      expect_identical(par, reference,
                       s.label + " @ " + std::to_string(threads) +
                           " threads");
      const ParallelFlowStats& spec = par.flow.parallel;
      if (threads == 1) {
        // route_threads <= 1 selects the serial router: no speculation
        // machinery at all.
        EXPECT_EQ(spec.speculated, 0u);
        EXPECT_EQ(spec.committed + spec.mispredicted +
                      spec.fallback_searches,
                  0u);
      } else {
        // Every dirty task resolves exactly one way.
        EXPECT_EQ(spec.committed + spec.mispredicted +
                      spec.fallback_searches,
                  par.flow.transports_rerouted);
      }
    }
  }
}

TEST(ParallelRoute, PcrThreadMatrix) { run_thread_matrix(make_pcr()); }
TEST(ParallelRoute, IvdThreadMatrix) { run_thread_matrix(make_ivd()); }
TEST(ParallelRoute, CpaThreadMatrix) { run_thread_matrix(make_cpa()); }
TEST(ParallelRoute, Synthetic1ThreadMatrix) {
  run_thread_matrix(make_synthetic(1));
}
TEST(ParallelRoute, Synthetic2ThreadMatrix) {
  run_thread_matrix(make_synthetic(2));
}
TEST(ParallelRoute, Synthetic3ThreadMatrix) {
  run_thread_matrix(make_synthetic(3));
}
TEST(ParallelRoute, Synthetic4ThreadMatrix) {
  run_thread_matrix(make_synthetic(4));
}

/// Workers-first forces full speculation: every position is searched
/// against the snapshot before the committer runs, so every dirty task
/// is resolved by the probe verify — committed when the footprint still
/// holds on the committed grid, mispredicted when an earlier commit
/// invalidated it. Both outcomes must occur somewhere in the matrix, or
/// the verify is vacuous (always-true would be unsound, always-false
/// would never parallelize).
TEST(ParallelRoute, WorkersFirstCommitsAndMispredicts) {
  std::uint64_t committed = 0;
  std::uint64_t mispredicted = 0;
  for (const auto& bench : paper_benchmarks()) {
    for (const Scenario& s :
         {prepare_dcsa(bench), prepare_baseline(bench)}) {
      SCOPED_TRACE(s.label);
      const ParallelRun par = run_parallel(s, bench, 4, workers_first);
      expect_identical(par, run_reference(s, bench), s.label);
      const ParallelFlowStats& spec = par.flow.parallel;
      // Nothing is ever stolen and the snapshot search never comes up
      // empty on these benchmarks, so there are no serial fallbacks …
      EXPECT_EQ(spec.fallback_searches, 0u);
      // … every position (clean and dirty alike) was speculated …
      EXPECT_EQ(spec.speculated, par.flow.transports_rerouted +
                                     par.flow.transports_reused);
      // … and every dirty task consumed its speculation.
      EXPECT_EQ(spec.committed + spec.mispredicted,
                par.flow.transports_rerouted);
      committed += spec.committed;
      mispredicted += spec.mispredicted;
    }
  }
  EXPECT_GT(committed, 0u);
  EXPECT_GT(mispredicted, 0u);
}

/// Committer-first forces the steal path everywhere: the committer
/// reaches each position before any worker claimed it, steals it, and
/// searches inline. The late workers must exit without work, and the
/// result is still bit-identical (this is also what a saturated pool or
/// a single-core host degrades to).
TEST(ParallelRoute, CommitterFirstStealsEverything) {
  for (const auto& bench : {make_pcr(), make_synthetic(2)}) {
    for (const Scenario& s :
         {prepare_dcsa(bench), prepare_baseline(bench)}) {
      SCOPED_TRACE(s.label);
      const ParallelRun par = run_parallel(s, bench, 4, committer_first);
      expect_identical(par, run_reference(s, bench), s.label);
      const ParallelFlowStats& spec = par.flow.parallel;
      EXPECT_EQ(spec.speculated, 0u);
      EXPECT_EQ(spec.committed, 0u);
      EXPECT_EQ(spec.mispredicted, 0u);
      EXPECT_EQ(spec.fallback_searches, par.flow.transports_rerouted);
    }
  }
}

/// route_threads == 1 must never invoke the executor (the serial router
/// is selected), and route_threads > 1 without an executor stays serial
/// too — the knob alone cannot change behavior.
TEST(ParallelRoute, SerialConfigurationsNeverInvokeExecutor) {
  const Benchmark bench = make_pcr();
  const Scenario s = prepare_dcsa(bench);
  bool invoked = false;
  const Executor tattletale =
      [&invoked](std::vector<std::function<void()>>& tasks) {
        invoked = true;
        for (auto& task : tasks) task();
      };
  const ParallelRun one = run_parallel(s, bench, 1, tattletale);
  EXPECT_FALSE(invoked);
  expect_identical(one, run_reference(s, bench), "1 thread");

  Schedule schedule = s.schedule;
  RouterOptions router = s.router;
  router.route_threads = 4;  // no executor attached
  StageTimes stages;
  FlowStats flow;
  route_until_consistent(schedule, bench.graph, s.alloc, s.chip,
                         s.placement, bench.wash, router, stages, {}, &flow);
  EXPECT_EQ(flow.parallel.speculated, 0u);
  EXPECT_EQ(flow.parallel.fallback_searches, 0u);
}

/// The speculation counters survive the result-cache spill, and spills
/// written before the counters existed load as zeros.
TEST(ParallelRoute, ParallelFlowStatsSpillRoundTrip) {
  SynthesisResult result;
  result.completion_time = 42.0;
  result.flow_stats.rounds = 3;
  result.flow_stats.transports_rerouted = 17;
  result.flow_stats.parallel.speculated = 29;
  result.flow_stats.parallel.committed = 11;
  result.flow_stats.parallel.mispredicted = 4;
  result.flow_stats.parallel.fallback_searches = 2;

  const std::string json = synthesis_result_to_json(result);
  const auto back = synthesis_result_from_json(json);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->flow_stats.rounds, 3u);
  EXPECT_EQ(back->flow_stats.transports_rerouted, 17u);
  EXPECT_EQ(back->flow_stats.parallel.speculated, 29u);
  EXPECT_EQ(back->flow_stats.parallel.committed, 11u);
  EXPECT_EQ(back->flow_stats.parallel.mispredicted, 4u);
  EXPECT_EQ(back->flow_stats.parallel.fallback_searches, 2u);

  // A spill written before the parallel counters existed: strip the four
  // keys from the flow_stats object and load again.
  std::string legacy = json;
  const std::size_t at = legacy.find(", \"speculated\"");
  ASSERT_NE(at, std::string::npos);
  const std::size_t end = legacy.find("}", at);
  ASSERT_NE(end, std::string::npos);
  legacy.erase(at, end - at);
  ASSERT_EQ(legacy.find("speculated"), std::string::npos);
  const auto old = synthesis_result_from_json(legacy);
  ASSERT_TRUE(old.has_value());
  EXPECT_EQ(old->flow_stats.rounds, 3u);
  EXPECT_EQ(old->flow_stats.transports_rerouted, 17u);
  EXPECT_EQ(old->flow_stats.parallel.speculated, 0u);
  EXPECT_EQ(old->flow_stats.parallel.committed, 0u);
  EXPECT_EQ(old->flow_stats.parallel.mispredicted, 0u);
  EXPECT_EQ(old->flow_stats.parallel.fallback_searches, 0u);
}

}  // namespace
}  // namespace fbmb
