#include "schedule/metrics.hpp"

#include <gtest/gtest.h>

#include "bench_suite/benchmarks.hpp"
#include "graph/graph_builder.hpp"
#include "schedule/list_scheduler.hpp"

namespace fbmb {
namespace {

/// Hand-built schedule for exact Eq. 1 arithmetic.
Schedule manual_schedule() {
  Schedule s;
  s.operations = {
      // c0: busy [0,4) and [6,8) over span [0,8) -> 6/8
      {OperationId{0}, ComponentId{0}, 0.0, 4.0, kNoOperation},
      {OperationId{1}, ComponentId{0}, 6.0, 8.0, kNoOperation},
      // c1: busy [2,5) over span [2,5) -> 3/3 = 1
      {OperationId{2}, ComponentId{1}, 2.0, 5.0, kNoOperation},
  };
  s.completion_time = 8.0;
  return s;
}

TEST(ResourceUtilization, MatchesEquationOne) {
  const Allocation alloc(AllocationSpec{2, 0, 0, 0});
  // (6/8 + 1) / 2 = 0.875
  EXPECT_DOUBLE_EQ(resource_utilization(manual_schedule(), alloc), 0.875);
}

TEST(ResourceUtilization, IdleComponentContributesZero) {
  const Allocation alloc(AllocationSpec{3, 0, 0, 0});  // c2 unused
  // (6/8 + 1 + 0) / 3
  EXPECT_DOUBLE_EQ(resource_utilization(manual_schedule(), alloc),
                   (0.75 + 1.0) / 3.0);
}

TEST(ResourceUtilization, EmptyAllocation) {
  EXPECT_DOUBLE_EQ(resource_utilization(Schedule{}, Allocation{}), 0.0);
}

TEST(ResourceUtilization, ZeroDurationOperationContributesNothing) {
  // Zero-duration operations are rejected by graph validation; if one
  // sneaks into a hand-built schedule it counts as no busy time.
  Schedule s;
  s.operations = {{OperationId{0}, ComponentId{0}, 3.0, 3.0, kNoOperation}};
  const Allocation alloc(AllocationSpec{1, 0, 0, 0});
  EXPECT_DOUBLE_EQ(resource_utilization(s, alloc), 0.0);
}

TEST(ResourceUtilization, FullyBusyComponentIsOne) {
  Schedule s;
  s.operations = {{OperationId{0}, ComponentId{0}, 0.0, 10.0, kNoOperation}};
  const Allocation alloc(AllocationSpec{1, 0, 0, 0});
  EXPECT_DOUBLE_EQ(resource_utilization(s, alloc), 1.0);
}

TEST(TransportTask, CacheTimeClampsAtZero) {
  TransportTask t;
  t.departure = 0.0;
  t.transport_time = 2.0;
  t.consume = 5.0;
  EXPECT_DOUBLE_EQ(t.cache_time(), 3.0);
  t.consume = 2.0;
  EXPECT_DOUBLE_EQ(t.cache_time(), 0.0);
  EXPECT_DOUBLE_EQ(t.arrival(), 2.0);
}

TEST(Schedule, TotalCacheTimeSums) {
  Schedule s;
  TransportTask a;
  a.departure = 0.0;
  a.transport_time = 2.0;
  a.consume = 5.0;  // 3 s cache
  TransportTask b = a;
  b.consume = 2.0;  // 0 s cache
  s.transports = {a, b};
  EXPECT_DOUBLE_EQ(s.total_cache_time(), 3.0);
}

TEST(Schedule, TotalComponentWashTime) {
  Schedule s;
  s.component_washes = {
      {ComponentId{0}, OperationId{0}, Fluid{}, 1.0, 3.0},
      {ComponentId{1}, OperationId{1}, Fluid{}, 5.0, 5.5},
  };
  EXPECT_DOUBLE_EQ(s.total_component_wash_time(), 2.5);
}

TEST(ScheduleStats, CountsEvictionsAndInPlace) {
  GraphBuilder builder;
  const auto o1 = builder.mix("o1", 3, 0.2);
  const auto o2 = builder.mix("o2", 20, 2.0);
  const auto o3 = builder.mix("o3", 2, 0.2);
  builder.dep(o2, o3);
  builder.dep(o1, o3);
  const Allocation alloc(AllocationSpec{1, 0, 0, 0});
  const auto schedule =
      schedule_bioassay(builder.graph(), alloc, builder.wash_model());
  const auto stats = compute_schedule_stats(schedule, alloc);
  EXPECT_EQ(stats.transport_count, 1);
  EXPECT_EQ(stats.eviction_count, 1);
  EXPECT_EQ(stats.in_place_count, 1);  // o3 consumes out(o2) in place
  EXPECT_DOUBLE_EQ(stats.completion_time, schedule.completion_time);
  EXPECT_GT(stats.utilization, 0.0);
}

TEST(ScheduleStats, MatchesIndividualMetrics) {
  const auto bench = make_cpa();
  const Allocation alloc(bench.allocation);
  const auto schedule = schedule_bioassay(bench.graph, alloc, bench.wash);
  const auto stats = compute_schedule_stats(schedule, alloc);
  EXPECT_DOUBLE_EQ(stats.total_cache_time, schedule.total_cache_time());
  EXPECT_DOUBLE_EQ(stats.component_wash_time,
                   schedule.total_component_wash_time());
  EXPECT_DOUBLE_EQ(stats.utilization,
                   resource_utilization(schedule, alloc));
  EXPECT_EQ(stats.transport_count,
            static_cast<int>(schedule.transports.size()));
}

}  // namespace
}  // namespace fbmb
