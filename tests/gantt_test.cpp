#include "report/gantt.hpp"

#include <gtest/gtest.h>

#include "bench_suite/benchmarks.hpp"
#include "graph/graph_builder.hpp"
#include "schedule/list_scheduler.hpp"
#include "util/strings.hpp"

namespace fbmb {
namespace {

TEST(Gantt, RendersRowsPerComponentPlusChannels) {
  const auto bench = make_pcr();
  const Allocation alloc(bench.allocation);
  const auto schedule =
      schedule_bioassay(bench.graph, alloc, bench.wash);
  const std::string gantt = render_gantt(schedule, bench.graph, alloc);
  // Header + one row per component + channels row.
  EXPECT_EQ(split(gantt, '\n').size() - 1,  // trailing newline
            1u + alloc.size() + 1u);
  for (const auto& comp : alloc.components()) {
    EXPECT_NE(gantt.find(comp.name), std::string::npos);
  }
  EXPECT_NE(gantt.find("channels"), std::string::npos);
}

TEST(Gantt, OperationCellsCoverExecutionWindows) {
  GraphBuilder b;
  const auto a = b.mix("a", 4, 2.0);  // tag 'a'
  (void)a;
  const Allocation alloc(AllocationSpec{1, 0, 0, 0});
  const auto schedule = schedule_bioassay(b.graph(), alloc, b.wash_model());
  GanttOptions opts;
  opts.seconds_per_column = 1.0;
  const std::string gantt = render_gantt(schedule, b.graph(), alloc, opts);
  const auto lines = split(gantt, '\n');
  // Mixer1 row: 4 columns of the op tag.
  ASSERT_GE(lines.size(), 2u);
  const std::string& row = lines[1];
  EXPECT_EQ(std::count(row.begin(), row.end(), 'a'), 4);
}

TEST(Gantt, WashWindowsMarked) {
  GraphBuilder b;
  const auto o1 = b.mix("o1", 3, 4.0);
  const auto o2 = b.mix("o2", 3, 0.2);  // forced onto the same mixer
  (void)o1;
  (void)o2;
  const Allocation alloc(AllocationSpec{1, 0, 0, 0});
  const auto schedule = schedule_bioassay(b.graph(), alloc, b.wash_model());
  const std::string gantt = render_gantt(schedule, b.graph(), alloc);
  EXPECT_NE(gantt.find('w'), std::string::npos);
}

TEST(Gantt, ChannelRowShowsParkedFluids) {
  GraphBuilder b;
  const auto o1 = b.mix("o1", 3, 0.2);
  const auto o2 = b.mix("o2", 20, 2.0);
  const auto o3 = b.mix("o3", 2, 0.2);
  b.dep(o2, o3);
  b.dep(o1, o3);
  const Allocation alloc(AllocationSpec{1, 0, 0, 0});
  SchedulerOptions opts;
  opts.refine_storage = false;  // keep the long channel dwell visible
  const auto schedule =
      schedule_bioassay(b.graph(), alloc, b.wash_model(), opts);
  ASSERT_GT(schedule.total_cache_time(), 0.0);
  const std::string gantt = render_gantt(schedule, b.graph(), alloc);
  const auto lines = split(gantt, '\n');
  const std::string& channel_row = lines[lines.size() - 2];
  EXPECT_NE(channel_row.find('1'), std::string::npos);
  (void)o1;
}

TEST(Gantt, TruncationMarksLongSchedules) {
  const auto bench = make_cpa();
  const Allocation alloc(bench.allocation);
  const auto schedule = schedule_bioassay(bench.graph, alloc, bench.wash);
  GanttOptions opts;
  opts.seconds_per_column = 0.1;  // force > max_columns
  opts.max_columns = 40;
  const std::string gantt = render_gantt(schedule, bench.graph, alloc, opts);
  EXPECT_NE(gantt.find("truncated"), std::string::npos);
  EXPECT_NE(gantt.find(">|"), std::string::npos);
}

TEST(Gantt, ScalesColumnsWithResolution) {
  const auto bench = make_pcr();
  const Allocation alloc(bench.allocation);
  const auto schedule = schedule_bioassay(bench.graph, alloc, bench.wash);
  GanttOptions coarse, fine;
  coarse.seconds_per_column = 4.0;
  fine.seconds_per_column = 0.5;
  const std::string a = render_gantt(schedule, bench.graph, alloc, coarse);
  const std::string b = render_gantt(schedule, bench.graph, alloc, fine);
  EXPECT_LT(a.size(), b.size());
}

}  // namespace
}  // namespace fbmb
