#include "graph/assay_parser.hpp"

#include <gtest/gtest.h>

#include "bench_suite/benchmarks.hpp"
#include "util/rng.hpp"

namespace fbmb {
namespace {

constexpr const char* kSample = R"(# a small assay
op a mix 5 wash=2
op b mix 6 d=5e-8
op c detect 3

dep a c
dep b c
allocate 2 0 0 1
)";

TEST(AssayParser, ParsesOperations) {
  const ParsedAssay parsed = parse_assay(kSample);
  ASSERT_EQ(parsed.graph.operation_count(), 3u);
  const auto& a = parsed.graph.operation(OperationId{0});
  EXPECT_EQ(a.name, "a");
  EXPECT_EQ(a.type, ComponentType::kMixer);
  EXPECT_DOUBLE_EQ(a.duration, 5.0);
  const auto& b = parsed.graph.operation(OperationId{1});
  EXPECT_DOUBLE_EQ(b.output.diffusion_coefficient, 5e-8);
  const auto& c = parsed.graph.operation(OperationId{2});
  EXPECT_EQ(c.type, ComponentType::kDetector);
  EXPECT_DOUBLE_EQ(c.output.diffusion_coefficient,
                   diffusion::kSmallMolecule);  // default fluid
}

TEST(AssayParser, WashAttributeRegistersOverride) {
  const ParsedAssay parsed = parse_assay(kSample);
  const auto& a = parsed.graph.operation(OperationId{0});
  EXPECT_DOUBLE_EQ(parsed.wash.wash_time(a.output), 2.0);
}

TEST(AssayParser, ParsesDependenciesAndAllocation) {
  const ParsedAssay parsed = parse_assay(kSample);
  EXPECT_EQ(parsed.graph.dependency_count(), 2u);
  EXPECT_TRUE(parsed.graph.has_dependency(OperationId{0}, OperationId{2}));
  ASSERT_TRUE(parsed.has_allocation);
  EXPECT_EQ(parsed.allocation, (AllocationSpec{2, 0, 0, 1}));
}

TEST(AssayParser, AllocationIsOptional) {
  const ParsedAssay parsed = parse_assay("op x mix 1\n");
  EXPECT_FALSE(parsed.has_allocation);
}

TEST(AssayParser, CommentsAndBlanksIgnored) {
  const ParsedAssay parsed =
      parse_assay("\n# full comment\nop x mix 1  # trailing\n\n");
  EXPECT_EQ(parsed.graph.operation_count(), 1u);
}

TEST(AssayParser, ErrorsCarryLineNumbers) {
  try {
    parse_assay("op a mix 1\nbogus directive\n");
    FAIL() << "expected AssayParseError";
  } catch (const AssayParseError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(AssayParser, RejectsBadType) {
  EXPECT_THROW(parse_assay("op a blend 1\n"), AssayParseError);
}

TEST(AssayParser, RejectsBadDuration) {
  EXPECT_THROW(parse_assay("op a mix fast\n"), AssayParseError);
}

TEST(AssayParser, RejectsDuplicateOperation) {
  EXPECT_THROW(parse_assay("op a mix 1\nop a mix 2\n"), AssayParseError);
}

TEST(AssayParser, RejectsUnknownDependencyEndpoint) {
  EXPECT_THROW(parse_assay("op a mix 1\ndep a ghost\n"), AssayParseError);
}

TEST(AssayParser, RejectsDuplicateDependency) {
  EXPECT_THROW(parse_assay("op a mix 1\nop b mix 1\ndep a b\ndep a b\n"),
               AssayParseError);
}

TEST(AssayParser, RejectsCycle) {
  EXPECT_THROW(parse_assay("op a mix 1\nop b mix 1\ndep a b\ndep b a\n"),
               AssayParseError);
}

TEST(AssayParser, RejectsBadAllocation) {
  EXPECT_THROW(parse_assay("allocate 1 2 3\n"), AssayParseError);
  EXPECT_THROW(parse_assay("allocate 1 2 3 -4\n"), AssayParseError);
  EXPECT_THROW(parse_assay("allocate 1 1 1 1\nallocate 1 1 1 1\n"),
               AssayParseError);
}

TEST(AssayParser, RejectsUnknownAttribute) {
  EXPECT_THROW(parse_assay("op a mix 1 color=blue\n"), AssayParseError);
}

TEST(AssayParser, RoundTripsThroughWriter) {
  const auto bench = make_ivd();
  const std::string text =
      write_assay(bench.graph, &bench.allocation, &bench.wash);
  const ParsedAssay reparsed = parse_assay(text);
  ASSERT_EQ(reparsed.graph.operation_count(),
            bench.graph.operation_count());
  EXPECT_EQ(reparsed.graph.dependency_count(),
            bench.graph.dependency_count());
  EXPECT_EQ(reparsed.allocation, bench.allocation);
  for (std::size_t i = 0; i < bench.graph.operation_count(); ++i) {
    const OperationId id{static_cast<int>(i)};
    EXPECT_EQ(reparsed.graph.operation(id).name,
              bench.graph.operation(id).name);
    EXPECT_EQ(reparsed.graph.operation(id).type,
              bench.graph.operation(id).type);
    EXPECT_DOUBLE_EQ(reparsed.graph.operation(id).duration,
                     bench.graph.operation(id).duration);
    EXPECT_NEAR(
        reparsed.wash.wash_time(reparsed.graph.operation(id).output),
        bench.wash.wash_time(bench.graph.operation(id).output), 1e-5);
  }
}

TEST(AssayParser, WriterWithoutWashUsesCoefficients) {
  const auto bench = make_pcr();
  const std::string text = write_assay(bench.graph);
  EXPECT_NE(text.find("d="), std::string::npos);
  EXPECT_EQ(text.find("allocate"), std::string::npos);
  const ParsedAssay reparsed = parse_assay(text);
  EXPECT_EQ(reparsed.graph.operation_count(), 7u);
}

TEST(AssayParserFuzz, GarbageNeverCrashesAlwaysThrowsParseError) {
  // Random byte soup must either parse (vanishingly unlikely) or throw
  // AssayParseError — never crash, never throw anything else.
  Rng rng(0xF00D);
  const char kAlphabet[] =
      "op dep allocate mix heat detect filter wash= d= 0123456789.\n\t #";
  for (int trial = 0; trial < 200; ++trial) {
    std::string text;
    const int length = rng.uniform_int(0, 160);
    for (int i = 0; i < length; ++i) {
      text += kAlphabet[rng.bounded(sizeof(kAlphabet) - 1)];
    }
    try {
      (void)parse_assay(text);
    } catch (const AssayParseError&) {
      // expected for malformed input
    }
  }
  SUCCEED();
}

TEST(AssayParserFuzz, MutatedValidFilesBehaveSanely) {
  // Start from a valid file and inject single-character mutations.
  const auto bench = make_ivd();
  const std::string base =
      write_assay(bench.graph, &bench.allocation, &bench.wash);
  Rng rng(42);
  for (int trial = 0; trial < 100; ++trial) {
    std::string text = base;
    const auto pos = rng.bounded(text.size());
    text[pos] = static_cast<char>('!' + rng.bounded(90));
    try {
      const ParsedAssay parsed = parse_assay(text);
      // If it still parses, the graph must still be valid.
      EXPECT_FALSE(parsed.graph.validate().has_value());
    } catch (const AssayParseError&) {
      // fine
    }
  }
}

}  // namespace
}  // namespace fbmb
