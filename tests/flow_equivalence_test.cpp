// Incremental route–retime fixpoint vs the from-scratch reference loop.
//
// route_until_consistent (incremental: persistent grid, dirty-set
// re-routing, verbatim replay of clean transports) must be a pure
// optimization of route_until_consistent_reference (fresh grid + full
// re-route every round): for every paper benchmark and both flow presets
// (the paper's DCSA configuration and the BA baseline), the final
// (Schedule, RoutingResult) pair must be bit-identical — same retimed
// operation/transport times, same cells, same doubles, same postponement
// counts. Stats are telemetry and excluded by design.

#include <gtest/gtest.h>

#include "bench_suite/benchmarks.hpp"
#include "core/flow_core.hpp"
#include "place/constructive_placer.hpp"
#include "place/sa_placer.hpp"
#include "schedule/list_scheduler.hpp"

namespace fbmb {
namespace {

struct Scenario {
  std::string label;
  Allocation alloc;
  Schedule schedule;
  ChipSpec chip;
  Placement placement;
  RouterOptions router;
};

/// The paper flow's routing scenario: DCSA binding + storage refinement,
/// one SA restart, wash-aware conflict-aware routing.
Scenario prepare_dcsa(const Benchmark& bench) {
  Scenario s;
  s.label = bench.name + "/dcsa";
  s.alloc = Allocation(bench.allocation);
  SchedulerOptions sched;
  sched.policy = BindingPolicy::kDcsa;
  sched.refine_storage = true;
  s.schedule = schedule_bioassay(bench.graph, s.alloc, bench.wash, sched);
  s.chip = derive_grid(ChipSpec{}, allocation_area(s.alloc, 1));
  PlacerOptions placer;
  placer.restarts = 1;
  s.placement =
      place_components(s.alloc, s.schedule, bench.wash, s.chip, placer);
  return s;
}

/// The BA baseline's routing scenario: earliest-ready binding,
/// constructive placement, wash-oblivious conflict-aware routing. This is
/// the preset that actually postpones on most benchmarks, so it exercises
/// the multi-round incremental path.
Scenario prepare_baseline(const Benchmark& bench) {
  Scenario s;
  s.label = bench.name + "/baseline";
  s.alloc = Allocation(bench.allocation);
  SchedulerOptions sched;
  sched.policy = BindingPolicy::kBaseline;
  sched.refine_storage = false;
  s.schedule = schedule_bioassay(bench.graph, s.alloc, bench.wash, sched);
  s.chip = derive_grid(ChipSpec{}, allocation_area(s.alloc, 1));
  s.placement = place_components_baseline(s.alloc, s.schedule, s.chip,
                                          ConstructivePlacerOptions{});
  s.router.wash_aware_weights = false;
  return s;
}

void run_benchmark(const Benchmark& bench) {
  for (const Scenario& s : {prepare_dcsa(bench), prepare_baseline(bench)}) {
    SCOPED_TRACE(s.label);
    Schedule incremental_schedule = s.schedule;
    StageTimes incremental_stages;
    FlowStats flow;
    const RoutingResult incremental = route_until_consistent(
        incremental_schedule, bench.graph, s.alloc, s.chip, s.placement,
        bench.wash, s.router, incremental_stages, {}, &flow);

    Schedule reference_schedule = s.schedule;
    StageTimes reference_stages;
    const RoutingResult reference = route_until_consistent_reference(
        reference_schedule, bench.graph, s.alloc, s.chip, s.placement,
        bench.wash, s.router, reference_stages, {});

    EXPECT_TRUE(identical_schedules(incremental_schedule,
                                    reference_schedule));
    EXPECT_TRUE(identical_routing(incremental, reference));
    // Bit-identical includes the capped flag: neither preset should hit
    // the 20-round cap on the paper benchmarks.
    EXPECT_EQ(incremental.stats.fixpoints_capped,
              reference.stats.fixpoints_capped);
    EXPECT_EQ(incremental.stats.fixpoints_capped, 0u);

    // Reuse accounting must be consistent: every transport of every round
    // is either replayed or re-routed, and round 1 re-routes everything.
    EXPECT_EQ(flow.rounds, flow.round_details.size());
    ASSERT_GE(flow.rounds, 1u);
    EXPECT_EQ(flow.round_details[0].transports_reused, 0u);
    EXPECT_EQ(flow.round_details[0].transports_rerouted,
              s.schedule.transports.size());
    std::uint64_t rerouted = 0;
    std::uint64_t reused = 0;
    for (const FlowRound& r : flow.round_details) {
      EXPECT_EQ(r.transports_rerouted + r.transports_reused,
                s.schedule.transports.size());
      rerouted += r.transports_rerouted;
      reused += r.transports_reused;
    }
    EXPECT_EQ(rerouted, flow.transports_rerouted);
    EXPECT_EQ(reused, flow.transports_reused);
    // A multi-round fixpoint must actually reuse paths — otherwise the
    // incremental core silently degenerated to the from-scratch loop.
    if (flow.rounds > 1) {
      EXPECT_GT(flow.transports_reused, 0u) << "no path reuse across "
                                            << flow.rounds << " rounds";
    }
  }
}

TEST(FlowEquivalence, Pcr) { run_benchmark(make_pcr()); }
TEST(FlowEquivalence, Ivd) { run_benchmark(make_ivd()); }
TEST(FlowEquivalence, Cpa) { run_benchmark(make_cpa()); }
TEST(FlowEquivalence, Synthetic1) { run_benchmark(make_synthetic(1)); }
TEST(FlowEquivalence, Synthetic2) { run_benchmark(make_synthetic(2)); }
TEST(FlowEquivalence, Synthetic3) { run_benchmark(make_synthetic(3)); }
TEST(FlowEquivalence, Synthetic4) { run_benchmark(make_synthetic(4)); }

/// The multi-round configurations (known from the fixpoint's round
/// counts) must exercise genuine reuse, not just trivially converge in
/// one round everywhere.
TEST(FlowEquivalence, MultiRoundConfigsExerciseReuse) {
  std::uint64_t multi_round_configs = 0;
  for (const auto& bench : paper_benchmarks()) {
    for (const Scenario& s :
         {prepare_dcsa(bench), prepare_baseline(bench)}) {
      Schedule schedule = s.schedule;
      StageTimes stages;
      FlowStats flow;
      route_until_consistent(schedule, bench.graph, s.alloc, s.chip,
                             s.placement, bench.wash, s.router, stages, {},
                             &flow);
      if (flow.rounds > 1) ++multi_round_configs;
    }
  }
  EXPECT_GE(multi_round_configs, 3u)
      << "the benchmark matrix no longer exercises multi-round fixpoints";
}

}  // namespace
}  // namespace fbmb
