#include "biochip/component.hpp"
#include "biochip/component_library.hpp"
#include "biochip/chip_spec.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace fbmb {
namespace {

TEST(ComponentType, Names) {
  EXPECT_STREQ(component_type_name(ComponentType::kMixer), "Mixer");
  EXPECT_STREQ(component_type_name(ComponentType::kHeater), "Heater");
  EXPECT_STREQ(component_type_name(ComponentType::kFilter), "Filter");
  EXPECT_STREQ(component_type_name(ComponentType::kDetector), "Detector");
}

TEST(ComponentType, AllTypesEnumerated) {
  EXPECT_EQ(kAllComponentTypes.size(), kComponentTypeCount);
}

TEST(ComponentId, ValidityAndOrdering) {
  EXPECT_FALSE(kNoComponent.valid());
  EXPECT_TRUE((ComponentId{0}).valid());
  EXPECT_LT(ComponentId{1}, ComponentId{2});
  std::ostringstream os;
  os << ComponentId{3};
  EXPECT_EQ(os.str(), "c3");
}

TEST(DefaultFootprint, PositiveAreas) {
  for (ComponentType type : kAllComponentTypes) {
    const Rect fp = default_footprint(type);
    EXPECT_GT(fp.width, 0);
    EXPECT_GT(fp.height, 0);
  }
}

TEST(AllocationSpec, CountsAndTotal) {
  const AllocationSpec spec{3, 1, 0, 2};
  EXPECT_EQ(spec.count(ComponentType::kMixer), 3);
  EXPECT_EQ(spec.count(ComponentType::kHeater), 1);
  EXPECT_EQ(spec.count(ComponentType::kFilter), 0);
  EXPECT_EQ(spec.count(ComponentType::kDetector), 2);
  EXPECT_EQ(spec.total(), 6);
}

TEST(AllocationSpec, ToStringMatchesTableFormat) {
  EXPECT_EQ((AllocationSpec{8, 0, 0, 2}).to_string(), "(8,0,0,2)");
  EXPECT_EQ((AllocationSpec{}).to_string(), "(0,0,0,0)");
}

TEST(Allocation, InstantiatesNamedComponents) {
  const Allocation alloc(AllocationSpec{2, 1, 0, 1});
  ASSERT_EQ(alloc.size(), 4u);
  EXPECT_EQ(alloc.component(ComponentId{0}).name, "Mixer1");
  EXPECT_EQ(alloc.component(ComponentId{1}).name, "Mixer2");
  EXPECT_EQ(alloc.component(ComponentId{2}).name, "Heater1");
  EXPECT_EQ(alloc.component(ComponentId{3}).name, "Detector1");
}

TEST(Allocation, IdsAreDense) {
  const Allocation alloc(AllocationSpec{3, 2, 1, 1});
  for (std::size_t i = 0; i < alloc.size(); ++i) {
    EXPECT_EQ(alloc.components()[i].id.value, static_cast<int>(i));
  }
}

TEST(Allocation, ComponentsOfType) {
  const Allocation alloc(AllocationSpec{2, 0, 1, 2});
  const auto mixers = alloc.components_of_type(ComponentType::kMixer);
  ASSERT_EQ(mixers.size(), 2u);
  EXPECT_EQ(mixers[0].value, 0);
  EXPECT_EQ(mixers[1].value, 1);
  EXPECT_TRUE(alloc.components_of_type(ComponentType::kHeater).empty());
  EXPECT_EQ(alloc.components_of_type(ComponentType::kDetector).size(), 2u);
}

TEST(Allocation, HasType) {
  const Allocation alloc(AllocationSpec{1, 0, 0, 0});
  EXPECT_TRUE(alloc.has_type(ComponentType::kMixer));
  EXPECT_FALSE(alloc.has_type(ComponentType::kDetector));
}

TEST(Allocation, EmptySpec) {
  const Allocation alloc{AllocationSpec{}};
  EXPECT_TRUE(alloc.empty());
}

TEST(Allocation, FootprintsMatchDefaults) {
  const Allocation alloc(AllocationSpec{1, 1, 1, 1});
  for (const auto& comp : alloc.components()) {
    const Rect fp = default_footprint(comp.type);
    EXPECT_EQ(comp.width, fp.width);
    EXPECT_EQ(comp.height, fp.height);
  }
}

TEST(ChipSpec, DeriveGridRespectsFixedGrid) {
  ChipSpec spec;
  spec.grid_width = 40;
  spec.grid_height = 30;
  const ChipSpec derived = derive_grid(spec, 1000);
  EXPECT_EQ(derived.grid_width, 40);
  EXPECT_EQ(derived.grid_height, 30);
}

TEST(ChipSpec, DeriveGridScalesWithArea) {
  ChipSpec spec;
  const ChipSpec small = derive_grid(spec, 36, 4.0, 1);
  const ChipSpec large = derive_grid(spec, 144, 4.0, 1);
  EXPECT_EQ(small.grid_width, 12);   // sqrt(36*4)
  EXPECT_EQ(large.grid_width, 24);   // sqrt(144*4)
  EXPECT_EQ(small.grid_width, small.grid_height);
}

TEST(ChipSpec, DeriveGridHonorsMinimumSide) {
  ChipSpec spec;
  const ChipSpec derived = derive_grid(spec, 1, 1.0, 12);
  EXPECT_GE(derived.grid_width, 12);
  EXPECT_GE(derived.grid_height, 12);
}

TEST(ChipSpec, Defaults) {
  const ChipSpec spec;
  EXPECT_FALSE(spec.has_fixed_grid());
  EXPECT_DOUBLE_EQ(spec.transport_time, 2.0);       // t_c from the paper
  EXPECT_DOUBLE_EQ(spec.initial_cell_weight, 10.0); // w_e from the paper
}

}  // namespace
}  // namespace fbmb
