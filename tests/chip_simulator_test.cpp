#include "sim/chip_simulator.hpp"

#include <gtest/gtest.h>

#include "bench_suite/benchmarks.hpp"
#include "graph/graph_builder.hpp"
#include "schedule/metrics.hpp"

namespace fbmb {
namespace {

TEST(ChipSimulator, ExecutesEveryPaperBenchmarkCleanly) {
  for (const auto& bench : paper_benchmarks()) {
    const Allocation alloc(bench.allocation);
    const auto result = synthesize_dcsa(bench.graph, alloc, bench.wash);
    const auto sim = simulate_chip(bench.graph, alloc, bench.wash, result);
    EXPECT_TRUE(sim.ok) << bench.name << ": "
                        << (sim.violations.empty() ? ""
                                                   : sim.violations.front());
    EXPECT_EQ(sim.stats.operations_executed,
              static_cast<int>(bench.graph.operation_count()))
        << bench.name;
  }
}

TEST(ChipSimulator, BaselineFlowAlsoExecutes) {
  for (const auto& bench : paper_benchmarks()) {
    const Allocation alloc(bench.allocation);
    const auto result =
        synthesize_baseline(bench.graph, alloc, bench.wash);
    const auto sim = simulate_chip(bench.graph, alloc, bench.wash, result);
    EXPECT_TRUE(sim.ok) << bench.name << ": "
                        << (sim.violations.empty() ? ""
                                                   : sim.violations.front());
  }
}

TEST(ChipSimulator, MeasuredStatsMatchReportedMetrics) {
  // Ground truth from the simulator's state machine must agree with the
  // flow's own accounting — two independent code paths.
  const auto bench = make_cpa();
  const Allocation alloc(bench.allocation);
  const auto result = synthesize_dcsa(bench.graph, alloc, bench.wash);
  const auto sim = simulate_chip(bench.graph, alloc, bench.wash, result);
  ASSERT_TRUE(sim.ok);

  EXPECT_NEAR(sim.stats.completion_time, result.completion_time, 1e-6);
  EXPECT_NEAR(sim.stats.channel_cache_time, result.total_cache_time, 1e-6);
  EXPECT_NEAR(sim.stats.component_wash_time,
              result.schedule.total_component_wash_time(), 1e-6);
  EXPECT_EQ(sim.stats.plugs_moved,
            static_cast<int>(result.schedule.transports.size()));
  EXPECT_EQ(sim.stats.washes_performed,
            static_cast<int>(result.schedule.component_washes.size()));

  // Busy time re-derives Eq. 1's numerator.
  double busy = 0.0;
  for (const auto& so : result.schedule.operations) busy += so.duration();
  EXPECT_NEAR(sim.stats.component_busy_time, busy, 1e-6);
}

TEST(ChipSimulator, TraceIsTimeOrdered) {
  const auto bench = make_ivd();
  const Allocation alloc(bench.allocation);
  const auto result = synthesize_dcsa(bench.graph, alloc, bench.wash);
  const auto sim = simulate_chip(bench.graph, alloc, bench.wash, result);
  for (std::size_t i = 1; i < sim.trace.size(); ++i) {
    EXPECT_LE(sim.trace[i - 1].time, sim.trace[i].time);
  }
}

TEST(ChipSimulator, DetectsCorruptedStartTime) {
  const auto bench = make_ivd();
  const Allocation alloc(bench.allocation);
  auto result = synthesize_dcsa(bench.graph, alloc, bench.wash);
  // Pull an operation with a transported input earlier than its delivery.
  for (auto& so : result.schedule.operations) {
    const bool has_transport_input =
        !bench.graph.parents(so.op).empty() && !so.consumed_in_place();
    if (has_transport_input && so.start > 1.0) {
      const double d = so.duration();
      so.start = 0.0;
      so.end = d;
      break;
    }
  }
  const auto sim = simulate_chip(bench.graph, alloc, bench.wash, result);
  EXPECT_FALSE(sim.ok);
}

TEST(ChipSimulator, DetectsMissingWash) {
  const auto bench = make_ivd();
  const Allocation alloc(bench.allocation);
  auto result = synthesize_dcsa(bench.graph, alloc, bench.wash);
  if (result.schedule.component_washes.empty()) GTEST_SKIP();
  result.schedule.component_washes.clear();
  const auto sim = simulate_chip(bench.graph, alloc, bench.wash, result);
  EXPECT_FALSE(sim.ok);  // some op now starts on a dirty chamber
}

TEST(ChipSimulator, DetectsCellCollision) {
  const auto bench = make_cpa();
  const Allocation alloc(bench.allocation);
  auto result = synthesize_dcsa(bench.graph, alloc, bench.wash);
  // Force two concurrent plugs onto identical cells.
  if (result.routing.paths.size() < 2) GTEST_SKIP();
  // Find two paths with overlapping movement windows.
  bool corrupted = false;
  for (std::size_t i = 0; !corrupted && i < result.routing.paths.size();
       ++i) {
    for (std::size_t j = i + 1; j < result.routing.paths.size(); ++j) {
      auto& a = result.routing.paths[i];
      auto& b = result.routing.paths[j];
      const TimeInterval wa{a.start, a.transport_end};
      const TimeInterval wb{b.start, b.transport_end};
      if (wa.overlaps(wb)) {
        b.cells = a.cells;
        corrupted = true;
        break;
      }
    }
  }
  if (!corrupted) GTEST_SKIP();
  const auto sim = simulate_chip(bench.graph, alloc, bench.wash, result);
  EXPECT_FALSE(sim.ok);
}

TEST(ChipSimulator, InPlaceChainExecutes) {
  GraphBuilder b;
  const auto a = b.mix("a", 3, 2.0);
  const auto c = b.mix("c", 4, 2.0);
  const auto d = b.mix("d", 5, 2.0);
  b.chain(a, c, d);
  const Allocation alloc(AllocationSpec{1, 0, 0, 0});
  const auto result = synthesize_dcsa(b.build(), alloc, b.wash_model());
  const auto sim = simulate_chip(b.graph(), alloc, b.wash_model(), result);
  EXPECT_TRUE(sim.ok) << (sim.violations.empty() ? ""
                                                 : sim.violations.front());
  EXPECT_EQ(sim.stats.plugs_moved, 0);
  EXPECT_EQ(sim.stats.washes_performed, 0);
  (void)a; (void)c; (void)d;
}

}  // namespace
}  // namespace fbmb
