#include "schedule/list_scheduler.hpp"

#include <gtest/gtest.h>

#include "bench_suite/benchmarks.hpp"
#include "graph/graph_builder.hpp"
#include "schedule/validator.hpp"

namespace fbmb {
namespace {

Schedule run(const GraphBuilder& b, const AllocationSpec& spec,
             SchedulerOptions opts = {}) {
  return schedule_bioassay(b.graph(), Allocation(spec), b.wash_model(), opts);
}

void expect_valid(const GraphBuilder& b, const AllocationSpec& spec,
                  const Schedule& s) {
  const auto errors =
      validate_schedule(s, b.graph(), Allocation(spec), b.wash_model());
  EXPECT_TRUE(errors.empty()) << errors.front();
}

TEST(Scheduler, SingleOperation) {
  GraphBuilder b;
  b.mix("a", 5, 2.0);
  const auto s = run(b, {1, 0, 0, 0});
  EXPECT_DOUBLE_EQ(s.completion_time, 5.0);
  EXPECT_DOUBLE_EQ(s.at(OperationId{0}).start, 0.0);
  EXPECT_TRUE(s.transports.empty());
  expect_valid(b, {1, 0, 0, 0}, s);
}

TEST(Scheduler, ChainOnOneMixerRunsInPlace) {
  // a -> b -> c on a single mixer: every hand-off is in place, no
  // transports, no washes, completion = sum of durations.
  GraphBuilder b;
  const auto a = b.mix("a", 3, 2.0);
  const auto c = b.mix("c", 4, 2.0);
  const auto d = b.mix("d", 5, 2.0);
  b.chain(a, c, d);
  const auto s = run(b, {1, 0, 0, 0});
  EXPECT_DOUBLE_EQ(s.completion_time, 12.0);
  EXPECT_TRUE(s.transports.empty());
  EXPECT_TRUE(s.component_washes.empty());
  EXPECT_TRUE(s.at(c).consumed_in_place());
  EXPECT_TRUE(s.at(d).consumed_in_place());
  expect_valid(b, {1, 0, 0, 0}, s);
}

TEST(Scheduler, TransportAddsConstantTime) {
  // a (mixer) -> d (detector): out(a) must move, costing t_c.
  GraphBuilder b;
  const auto a = b.mix("a", 3, 2.0);
  const auto d = b.detect("d", 4, 0.2);
  b.dep(a, d);
  SchedulerOptions opts;
  opts.transport_time = 2.0;
  const auto s = run(b, {1, 0, 0, 1}, opts);
  EXPECT_DOUBLE_EQ(s.at(d).start, 5.0);  // 3 + t_c
  EXPECT_DOUBLE_EQ(s.completion_time, 9.0);
  ASSERT_EQ(s.transports.size(), 1u);
  EXPECT_DOUBLE_EQ(s.transports[0].departure, 3.0);
  EXPECT_DOUBLE_EQ(s.transports[0].consume, 5.0);
  EXPECT_DOUBLE_EQ(s.transports[0].cache_time(), 0.0);
  expect_valid(b, {1, 0, 0, 1}, s);
}

TEST(Scheduler, CustomTransportTime) {
  GraphBuilder b;
  const auto a = b.mix("a", 3, 2.0);
  const auto d = b.detect("d", 4, 0.2);
  b.dep(a, d);
  SchedulerOptions opts;
  opts.transport_time = 5.0;
  const auto s = run(b, {1, 0, 0, 1}, opts);
  EXPECT_DOUBLE_EQ(s.at(d).start, 8.0);
}

TEST(Scheduler, WashGapBetweenForeignOperations) {
  // Two independent mixes forced onto one mixer: the second waits for the
  // first fluid to leave (departure to its consumer) plus the wash.
  GraphBuilder b;
  const auto a = b.mix("a", 3, 4.0);   // wash 4 s
  const auto c = b.mix("c", 3, 2.0);   // independent
  const auto da = b.detect("da", 1, 0.2);
  const auto dc = b.detect("dc", 1, 0.2);
  b.dep(a, da);
  b.dep(c, dc);
  const auto s = run(b, {1, 0, 0, 2});
  const auto& first = s.at(a).start < s.at(c).start ? s.at(a) : s.at(c);
  const auto& second = s.at(a).start < s.at(c).start ? s.at(c) : s.at(a);
  // Second mix starts after first's fluid is out + wash: the wash of the
  // first-scheduled fluid is 4.0 or 2.0 depending on priority order.
  EXPECT_GE(second.start, first.end);
  ASSERT_EQ(s.component_washes.size(), 1u);
  EXPECT_GE(second.start, s.component_washes[0].end - 1e-9);
  expect_valid(b, {1, 0, 0, 2}, s);
}

TEST(Scheduler, Fig5CaseIPicksLowestDiffusionParent) {
  // Fig. 5: o1 on Mixer1 (wash 6 s fluid = low diffusion), o2 on Mixer2
  // (wash 2 s fluid). o3 consumes both; Case I must bind o3 to Mixer1 so
  // the expensive residue is consumed instead of washed.
  GraphBuilder b;
  const auto o1 = b.mix("o1", 5, 6.0);
  const auto o2 = b.mix("o2", 5, 2.0);
  const auto o3 = b.mix("o3", 4, 2.0);
  b.dep(o1, o3);
  b.dep(o2, o3);
  const auto s = run(b, {3, 0, 0, 0});
  EXPECT_EQ(s.at(o3).component, s.at(o1).component);
  EXPECT_EQ(s.at(o3).in_place_parent, o1);
  // Only o2's output is transported.
  ASSERT_EQ(s.transports.size(), 1u);
  EXPECT_EQ(s.transports[0].producer, o2);
  expect_valid(b, {3, 0, 0, 0}, s);
}

TEST(Scheduler, Fig5BaselineMayPickEitherParent) {
  // The baseline binds by ready time only; with both parents ending
  // simultaneously it picks the lower component id, not the lower
  // diffusion coefficient.
  GraphBuilder b;
  const auto o1 = b.mix("o1", 5, 2.0);   // cheap wash on Mixer1
  const auto o2 = b.mix("o2", 5, 6.0);   // expensive wash on Mixer2
  const auto o3 = b.mix("o3", 4, 2.0);
  b.dep(o1, o3);
  b.dep(o2, o3);
  SchedulerOptions opts;
  opts.policy = BindingPolicy::kBaseline;
  const auto s = run(b, {3, 0, 0, 0}, opts);
  // Earliest-ready binding goes to the third, still-idle mixer (ready at
  // t=0) and pays two transports — even though the DCSA strategy would
  // reuse Mixer2 in place (out(o2) has the lower diffusion coefficient).
  EXPECT_NE(s.at(o3).component, s.at(o1).component);
  EXPECT_NE(s.at(o3).component, s.at(o2).component);
  EXPECT_FALSE(s.at(o3).consumed_in_place());
  const auto dcsa = run(b, {3, 0, 0, 0});
  EXPECT_EQ(dcsa.at(o3).component, dcsa.at(o2).component);
}

TEST(Scheduler, Fig6CaseIIPicksEarliestReadyComponent) {
  // Fig. 6: when no parent fluid remains in place, bind to the component
  // with the earliest ready time. Construct: o1 on Mixer1 leaves a fluid
  // whose consumer (o2, a detector op) removes it, then Mixer1 still needs
  // a long wash; Mixer2 finished earlier and cheaply, so o5 goes there.
  GraphBuilder b;
  const auto o1 = b.mix("o1", 4, 8.0);    // Mixer1, slow wash
  const auto o2 = b.detect("o2", 2, 0.2);
  const auto o3 = b.mix("o3", 4, 0.2);    // Mixer2, fast wash
  const auto o4 = b.detect("o4", 2, 0.2);
  const auto o5 = b.mix("o5", 3, 2.0);    // independent of o1..o4
  const auto o6 = b.detect("o6", 1, 0.2);
  b.dep(o1, o2);
  b.dep(o3, o4);
  b.dep(o5, o6);
  const auto s = run(b, {2, 0, 0, 3});
  // o5 has no same-type parents -> Case II. Mixer holding o3's residue
  // (wash 0.2) is ready before the mixer holding o1's residue (wash 8).
  EXPECT_EQ(s.at(o5).component, s.at(o3).component);
  expect_valid(b, {2, 0, 0, 3}, s);
}

TEST(Scheduler, EvictionWhenComponentReallocated) {
  // On a single mixer, the long chain head o2 runs first (highest
  // priority); its output waits in the chamber while o1 needs the mixer,
  // so out(o2) is evicted into channel storage, and o3 later consumes
  // out(o1) in place and pulls out(o2) back from the channel.
  GraphBuilder b;
  const auto o1 = b.mix("o1", 3, 0.2);
  const auto o2 = b.mix("o2", 20, 2.0);
  const auto o3 = b.mix("o3", 2, 0.2);
  b.dep(o2, o3);
  b.dep(o1, o3);
  const auto s = run(b, {1, 0, 0, 0});
  ASSERT_EQ(s.transports.size(), 1u);
  const auto& t = s.transports[0];
  EXPECT_EQ(t.producer, o2);
  EXPECT_TRUE(t.evicted);
  EXPECT_EQ(s.at(o3).in_place_parent, o1);
  expect_valid(b, {1, 0, 0, 0}, s);
}

TEST(Scheduler, RefinementShrinksCacheTime) {
  GraphBuilder b;
  const auto o1 = b.mix("o1", 3, 0.2);
  const auto o2 = b.mix("o2", 20, 2.0);
  const auto o3 = b.mix("o3", 2, 0.2);
  b.dep(o2, o3);
  b.dep(o1, o3);
  SchedulerOptions eager;
  eager.refine_storage = false;
  SchedulerOptions refined;
  refined.refine_storage = true;
  const auto s_eager = run(b, {1, 0, 0, 0}, eager);
  const auto s_refined = run(b, {1, 0, 0, 0}, refined);
  EXPECT_LE(s_refined.total_cache_time(), s_eager.total_cache_time());
  EXPECT_GT(s_eager.total_cache_time(), 0.0);
  // Refinement never changes operation times.
  EXPECT_DOUBLE_EQ(s_refined.completion_time, s_eager.completion_time);
  expect_valid(b, {1, 0, 0, 0}, s_refined);
  expect_valid(b, {1, 0, 0, 0}, s_eager);
}

TEST(Scheduler, RefineChannelStorageIsIdempotent) {
  GraphBuilder b;
  const auto o1 = b.mix("o1", 3, 0.2);
  const auto o2 = b.mix("o2", 20, 2.0);
  const auto o3 = b.mix("o3", 2, 0.2);
  b.dep(o2, o3);
  b.dep(o1, o3);
  auto s = run(b, {1, 0, 0, 0});
  const double cache = s.total_cache_time();
  refine_channel_storage(s);
  EXPECT_DOUBLE_EQ(s.total_cache_time(), cache);
}

TEST(Scheduler, PriorityOrderWinsContention) {
  // Two chains compete for one mixer; the longer chain (higher priority)
  // must be scheduled first.
  GraphBuilder b;
  const auto long1 = b.mix("long1", 5, 0.2);
  const auto long2 = b.mix("long2", 5, 0.2);
  const auto long3 = b.mix("long3", 5, 0.2);
  b.chain(long1, long2, long3);
  const auto short1 = b.mix("short1", 5, 0.2);
  const auto s = run(b, {1, 0, 0, 0});
  EXPECT_LT(s.at(long1).start, s.at(short1).start);
  expect_valid(b, {1, 0, 0, 0}, s);
}

TEST(Scheduler, ThrowsWithoutQualifiedComponent) {
  GraphBuilder b;
  b.heat("h", 3, 2.0);
  EXPECT_THROW(run(b, {2, 0, 0, 0}), SchedulingError);
}

TEST(Scheduler, ThrowsOnInvalidGraph) {
  SequencingGraph g;
  const auto a = g.add_operation("a", ComponentType::kMixer, 1.0);
  const auto b = g.add_operation("b", ComponentType::kMixer, 1.0);
  g.add_dependency(a, b);
  g.add_dependency(b, a);
  EXPECT_THROW(schedule_bioassay(g, Allocation({1, 0, 0, 0}), WashModel{}),
               SchedulingError);
}

TEST(Scheduler, DeterministicAcrossRuns) {
  const auto bench = make_cpa();
  const Allocation alloc(bench.allocation);
  const auto s1 = schedule_bioassay(bench.graph, alloc, bench.wash);
  const auto s2 = schedule_bioassay(bench.graph, alloc, bench.wash);
  ASSERT_EQ(s1.operations.size(), s2.operations.size());
  for (std::size_t i = 0; i < s1.operations.size(); ++i) {
    EXPECT_EQ(s1.operations[i].component, s2.operations[i].component);
    EXPECT_DOUBLE_EQ(s1.operations[i].start, s2.operations[i].start);
  }
  EXPECT_EQ(s1.transports.size(), s2.transports.size());
}

TEST(Scheduler, CompletionIsMaxEnd) {
  const auto bench = make_ivd();
  const auto s = schedule_bioassay(bench.graph, Allocation(bench.allocation),
                                   bench.wash);
  double max_end = 0.0;
  for (const auto& so : s.operations) max_end = std::max(max_end, so.end);
  EXPECT_DOUBLE_EQ(s.completion_time, max_end);
}

TEST(Scheduler, CompletionNotBelowCriticalPathBound) {
  for (const auto& bench : paper_benchmarks()) {
    const auto s = schedule_bioassay(
        bench.graph, Allocation(bench.allocation), bench.wash);
    // The critical path assumes every edge costs t_c; in-place hand-offs
    // avoid some transports, so the pure duration-only bound applies.
    double duration_bound = 0.0;
    for (const auto& op : bench.graph.operations()) {
      duration_bound = std::max(duration_bound, op.duration);
    }
    EXPECT_GE(s.completion_time, duration_bound) << bench.name;
  }
}

TEST(Scheduler, PaperExampleDcsaBeatsBaseline) {
  const auto bench = make_paper_example();
  const Allocation alloc(bench.allocation);
  SchedulerOptions ours;
  SchedulerOptions ba;
  ba.policy = BindingPolicy::kBaseline;
  ba.refine_storage = false;
  const auto s_ours = schedule_bioassay(bench.graph, alloc, bench.wash, ours);
  const auto s_ba = schedule_bioassay(bench.graph, alloc, bench.wash, ba);
  EXPECT_LE(s_ours.completion_time, s_ba.completion_time);
}

TEST(Scheduler, ScheduleToStringMentionsOperations) {
  const auto bench = make_pcr();
  const auto s = schedule_bioassay(bench.graph, Allocation(bench.allocation),
                                   bench.wash);
  const std::string text = s.to_string(bench.graph);
  for (const auto& op : bench.graph.operations()) {
    EXPECT_NE(text.find(op.name), std::string::npos);
  }
}

TEST(Scheduler, OperationsOnSortsByStart) {
  const auto bench = make_pcr();
  const auto s = schedule_bioassay(bench.graph, Allocation(bench.allocation),
                                   bench.wash);
  for (int c = 0; c < 3; ++c) {
    const auto ops = s.operations_on(ComponentId{c});
    for (std::size_t i = 1; i < ops.size(); ++i) {
      EXPECT_LE(ops[i - 1].start, ops[i].start);
    }
  }
}

}  // namespace
}  // namespace fbmb
