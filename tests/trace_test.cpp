// The structured tracing subsystem (src/trace): lock-free per-thread
// rings, snapshot-while-writing, Chrome-trace export, and the end-to-end
// instrumentation contract.
//
// The recorder is process-global, so every test starts from clear() and
// leaves the recorder disabled. The tests pin:
//   * ring wraparound drops oldest-first and reports an exact `dropped`,
//   * 8 concurrent emitters + a snapshotting reader are race-free (this
//     binary carries the `runtime` label and runs under TSan),
//   * a snapshot taken mid-write contains only complete, untorn events
//     (the seqlock keep-window discards any slot a writer may have been
//     overwriting),
//   * exported Chrome JSON parses with the repo's own jsonio parser and
//     carries the documented ph/ts/dur/args schema,
//   * disabled tracing emits nothing and costs no events,
//   * trace ids nest via TraceIdScope and stamp every event, and
//   * the flow instrumentation: one traced route_until_consistent run,
//     forced down the speculation verify path, yields stage spans, one
//     span per routing round, and at least one spec_commit instant — all
//     sharing the ambient trace id (the ISSUE acceptance shape).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_suite/benchmarks.hpp"
#include "core/flow_core.hpp"
#include "place/sa_placer.hpp"
#include "runtime/result_io.hpp"
#include "schedule/list_scheduler.hpp"
#include "trace/chrome_export.hpp"
#include "trace/trace.hpp"

namespace fbmb {
namespace {

trace::TraceRecorder& recorder() { return trace::TraceRecorder::instance(); }

/// Fresh, enabled recorder for one test; disables and clears on exit.
class TraceEnv {
 public:
  TraceEnv() {
    recorder().clear();
    recorder().set_enabled(true);
  }
  ~TraceEnv() {
    recorder().set_enabled(false);
    recorder().clear();
  }
};

/// All events across all threads whose interned name equals `name`.
std::vector<trace::Event> events_named(const trace::TraceSnapshot& snap,
                                       const std::string& name) {
  std::vector<trace::Event> out;
  for (const trace::ThreadTrace& thread : snap.threads) {
    for (const trace::Event& event : thread.events) {
      if (event.name < snap.names.size() &&
          snap.names[event.name] == name) {
        out.push_back(event);
      }
    }
  }
  return out;
}

TEST(TraceRing, WraparoundDropsOldestFirstWithExactCount) {
  TraceEnv env;
  constexpr std::uint64_t kOverflow = 100;
  for (std::uint64_t i = 0; i < trace::kRingCapacity + kOverflow; ++i) {
    TRACE_COUNTER("test", "wrap", static_cast<double>(i));
  }
  const trace::TraceSnapshot snap = recorder().snapshot();
  std::vector<trace::Event> kept = events_named(snap, "wrap");
  ASSERT_EQ(kept.size(), trace::kRingCapacity);
  // Oldest-first eviction: the survivors are exactly the newest
  // kRingCapacity values, still in emission order.
  for (std::size_t i = 0; i < kept.size(); ++i) {
    EXPECT_EQ(kept[i].value, static_cast<double>(kOverflow + i));
  }
  std::uint64_t dropped = 0;
  for (const trace::ThreadTrace& thread : snap.threads) {
    dropped += thread.dropped;
  }
  EXPECT_EQ(dropped, kOverflow);
}

TEST(TraceRing, ConcurrentEmittersAreRaceFreeAndLossAccounted) {
  TraceEnv env;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  // Real barrier at both ends: every writer must be alive before the
  // first emit (so each acquires its own ring rather than recycling an
  // already-exited sibling's lane) and stay alive until the last one
  // finishes (so no lane is recycled mid-test).
  std::atomic<int> ready{0};
  std::atomic<int> done{0};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([t, &ready, &done] {
      recorder().set_current_thread_name("trace-test-w" + std::to_string(t));
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        TRACE_COUNTER("test", "flood", 42.0);
      }
      done.fetch_add(1);
      while (done.load() < kThreads) std::this_thread::yield();
    });
  }
  // Snapshot continuously while the writers are mid-flood: the reader
  // must never block them, tear an event, or trip TSan.
  for (int i = 0; i < 50; ++i) {
    const trace::TraceSnapshot snap = recorder().snapshot();
    for (const trace::Event& event : events_named(snap, "flood")) {
      EXPECT_EQ(event.value, 42.0);  // untorn payload
      EXPECT_EQ(event.type, trace::EventType::kCounter);
    }
  }
  for (std::thread& w : writers) w.join();

  const trace::TraceSnapshot snap = recorder().snapshot();
  int writer_rings = 0;
  for (const trace::ThreadTrace& thread : snap.threads) {
    if (thread.name.rfind("trace-test-w", 0) != 0) continue;
    ++writer_rings;
    // Nothing silently lost: kept + dropped covers every emit.
    EXPECT_EQ(thread.events.size() + thread.dropped, kPerThread);
  }
  EXPECT_EQ(writer_rings, kThreads);
}

TEST(TraceRing, SnapshotDuringWritingSeesOnlyCompleteEvents) {
  TraceEnv env;
  std::atomic<bool> stop{false};
  std::thread writer([&stop] {
    std::uint64_t i = 0;
    while (!stop.load()) {
      // Spans are recorded once, at scope exit — a snapshot can never
      // observe a half-open span, only complete (ts, dur) pairs.
      trace::SpanGuard span("test", "busy");
      TRACE_COUNTER("test", "tick", static_cast<double>(i % 7));
      ++i;
    }
  });
  for (int i = 0; i < 200; ++i) {
    const trace::TraceSnapshot snap = recorder().snapshot();
    for (const trace::ThreadTrace& thread : snap.threads) {
      for (const trace::Event& event : thread.events) {
        ASSERT_LT(event.name, snap.names.size());
        ASSERT_LT(event.category, snap.categories.size());
        if (event.type == trace::EventType::kCounter &&
            snap.names[event.name] == "tick") {
          EXPECT_GE(event.value, 0.0);
          EXPECT_LT(event.value, 7.0);
        }
      }
    }
  }
  stop.store(true);
  writer.join();
}

TEST(TraceExport, ChromeJsonParsesWithJsonioAndKeepsSchema) {
  TraceEnv env;
  trace::TraceIdScope scope(recorder().next_trace_id());
  {
    trace::SpanGuard span("stage", "unit_span");
    TRACE_INSTANT("stage", "unit_instant");
  }
  TRACE_COUNTER("stage", "unit_counter", 3.5);

  const std::string json = trace::to_chrome_json(recorder().snapshot());
  const std::optional<jsonio::Value> root = jsonio::parse(json);
  ASSERT_TRUE(root.has_value()) << json.substr(0, 200);
  ASSERT_EQ(root->kind, jsonio::Value::Kind::kObject);
  const jsonio::Value* display = root->find("displayTimeUnit");
  ASSERT_NE(display, nullptr);
  EXPECT_EQ(display->str, "ms");
  const jsonio::Value* events = root->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, jsonio::Value::Kind::kArray);

  bool saw_span = false;
  bool saw_instant = false;
  bool saw_counter = false;
  const std::string want_id = std::to_string(trace::current_trace_id());
  for (const jsonio::Value& event : events->array) {
    const jsonio::Value* name = event.find("name");
    const jsonio::Value* ph = event.find("ph");
    if (name == nullptr || ph == nullptr) continue;
    if (name->str == "unit_span") {
      saw_span = true;
      EXPECT_EQ(ph->str, "X");
      ASSERT_NE(event.find("dur"), nullptr);
      ASSERT_NE(event.find("ts"), nullptr);
      EXPECT_EQ(event.find("cat")->str, "stage");
      EXPECT_EQ(event.find("args")->find("trace_id")->str, want_id);
    } else if (name->str == "unit_instant") {
      saw_instant = true;
      EXPECT_EQ(ph->str, "i");
      EXPECT_EQ(event.find("s")->str, "t");
    } else if (name->str == "unit_counter") {
      saw_counter = true;
      EXPECT_EQ(ph->str, "C");
      EXPECT_EQ(event.find("args")->find("unit_counter")->num, 3.5);
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_instant);
  EXPECT_TRUE(saw_counter);
}

TEST(TraceExport, FilterAndCapOptions) {
  TraceEnv env;
  {
    trace::TraceIdScope keep(1001);
    for (int i = 0; i < 10; ++i) TRACE_INSTANT("test", "keep_me");
  }
  {
    trace::TraceIdScope discard(1002);
    TRACE_INSTANT("test", "drop_me");
  }
  trace::ChromeExportOptions options;
  options.trace_id_filter = 1001;
  options.max_events = 4;
  const std::string json =
      trace::to_chrome_json(recorder().snapshot(), options);
  const std::optional<jsonio::Value> root = jsonio::parse(json);
  ASSERT_TRUE(root.has_value());
  std::size_t kept = 0;
  for (const jsonio::Value& event : root->find("traceEvents")->array) {
    const jsonio::Value* name = event.find("name");
    if (name == nullptr) continue;  // thread_name metadata rows
    EXPECT_NE(name->str, "drop_me");
    if (name->str == "keep_me") ++kept;
  }
  EXPECT_EQ(kept, 4u);
  EXPECT_TRUE(root->find("otherData")->find("truncated")->b);
}

TEST(TraceRecorder, DisabledEmitsNothing) {
  recorder().clear();
  recorder().set_enabled(false);
  const std::uint64_t before = recorder().total_events();
  {
    TRACE_SPAN("test", "ghost");
    TRACE_INSTANT("test", "ghost");
    TRACE_COUNTER("test", "ghost", 1.0);
  }
  EXPECT_EQ(recorder().total_events(), before);
  EXPECT_EQ(events_named(recorder().snapshot(), "ghost").size(), 0u);
}

TEST(TraceRecorder, TraceIdScopesNestAndRestore) {
  EXPECT_EQ(trace::current_trace_id(), 0u);
  {
    trace::TraceIdScope outer(5);
    EXPECT_EQ(trace::current_trace_id(), 5u);
    {
      trace::TraceIdScope inner(9);
      EXPECT_EQ(trace::current_trace_id(), 9u);
    }
    EXPECT_EQ(trace::current_trace_id(), 5u);
  }
  EXPECT_EQ(trace::current_trace_id(), 0u);
}

TEST(TraceRecorder, ForceCountOverridesDisabled) {
  recorder().clear();
  recorder().set_enabled(false);
  EXPECT_FALSE(trace::enabled());
  recorder().push_force();
  EXPECT_TRUE(trace::enabled());
  recorder().push_force();
  recorder().pop_force();
  EXPECT_TRUE(trace::enabled());  // still one force outstanding
  recorder().pop_force();
  EXPECT_FALSE(trace::enabled());
  recorder().clear();
}

/// The acceptance shape: a traced multi-round fixpoint, forced down the
/// speculation verify path, produces nested stage spans, one route_round
/// span per round, and >= 1 spec_commit — all under one trace id.
TEST(TraceFlow, TracedFixpointYieldsStagesRoundsAndCommits) {
  TraceEnv env;
  const std::uint64_t id = recorder().next_trace_id();
  trace::TraceIdScope scope(id);

  // Synthetic2/dcsa converges in 3 routing rounds — enough repetition to
  // exercise the retime spans and the per-round counters.
  const Benchmark bench = make_synthetic(2);
  Allocation alloc(bench.allocation);
  SchedulerOptions sched;
  sched.policy = BindingPolicy::kDcsa;
  sched.refine_storage = true;
  Schedule schedule = schedule_bioassay(bench.graph, alloc, bench.wash,
                                        sched);
  const ChipSpec chip = derive_grid(ChipSpec{}, allocation_area(alloc, 1));
  PlacerOptions placer;
  placer.restarts = 1;
  const Placement placement =
      place_components(alloc, schedule, bench.wash, chip, placer);

  RouterOptions router;
  router.route_threads = 2;
  // Workers run before the committer: every position is speculated, so
  // each dirty transport verifies (commit or mispredict) — never steals.
  router.route_executor = [](std::vector<std::function<void()>>& tasks) {
    for (std::size_t i = 1; i < tasks.size(); ++i) tasks[i]();
    tasks[0]();
  };
  StageTimes stages;
  FlowStats flow;
  route_until_consistent(schedule, bench.graph, alloc, chip, placement,
                         bench.wash, router, stages, {}, &flow);
  ASSERT_GT(flow.parallel.committed, 0u);

  const trace::TraceSnapshot snap = recorder().snapshot();
  const auto count_with_id = [&](const std::string& name) {
    std::size_t n = 0;
    for (const trace::Event& event : events_named(snap, name)) {
      if (event.trace_id == id) ++n;
    }
    return n;
  };
  EXPECT_EQ(count_with_id("fixpoint"), 1u);
  EXPECT_EQ(count_with_id("grid_build"), 1u);
  EXPECT_EQ(count_with_id("route_round"),
            static_cast<std::size_t>(flow.rounds));
  EXPECT_GE(count_with_id("retime"), 1u);
  EXPECT_EQ(count_with_id("spec_commit"),
            static_cast<std::size_t>(flow.parallel.committed));
  EXPECT_GE(count_with_id("speculate"),
            static_cast<std::size_t>(flow.parallel.speculated));
}

}  // namespace
}  // namespace fbmb
