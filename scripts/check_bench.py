#!/usr/bin/env python3
"""Benchmark regression gate for the core-vs-reference perf JSONs.

Parses the BENCH_*.json files written by route_perf / place_perf /
sched_perf (--json-out) and fails when:

  * any benchmark entry is missing the "identical" key or reports
    identical != true (the core diverged from its reference oracle), or
  * any benchmark's core-vs-reference speedup drops below --min-speedup
    (default 1.0: the core must never be slower than the reference), or
  * a file given via --geomean FILE=X has a geometric-mean speedup below
    X (e.g. --geomean BENCH_sched.json=1.5 enforces the scheduler core's
    acceptance threshold).

Gates the route–retime fixpoint report written by flow_perf (--json-out)
when given via --flow FILE: every config must report identical == true
(the incremental fixpoint is bit-identical to the from-scratch loop),
every config's end-to-end speedup must stay above --flow-min-speedup
(default 0.85 — a flow that converges in one round has no repeat work
to eliminate, so its theoretical best is parity; with pooled probe
buffers the footprint-recording overhead is a few percent, and the
floor leaves room only for timer noise on microsecond-scale runs),
and the geomean speedup over the multi-round flows — the configs where
the reuse machinery actually has repeat work to remove — must meet
--flow-geomean-multi (default 1.2).

When the flow report was produced with --threads N it carries a
"parallel" section (speculative parallel routing vs the serial
incremental core). Determinism is gated unconditionally: every config's
parallel.identical must be true. The performance gate —
--flow-parallel-geomean (default 1.3) over the multi-round configs —
applies only when the bench host had at least as many cores as routing
threads (parallel.host_cores >= parallel.threads); on a smaller host
workers timeshare with the commit thread, so the honest measurement is
overhead, not speedup, and the gate prints a skip notice instead.

Also gates the synthesis-service load report written by service_load
(--json-out) when given via --service FILE: every request must have been
answered with an expected status, the warm payload must be bit-identical
to the direct library result, the client-side p99 latency must stay under
--service-p99 ms, the overall error rate under --service-error-rate, and
the report must carry the server-side per-endpoint latency histograms
(server_endpoints, scraped from /metrics) with derived percentiles for
every endpoint and at least one recorded synthesize request.

Also gates the tracing-overhead report written by trace_overhead
(--json-out) when given via --trace FILE: traced and untraced runs must
produce bit-identical results, the geomean slowdown of the flow_perf
configs with tracing ENABLED must stay under --trace-enabled-overhead
(default 0.10), and the projected cost of the DISABLED trace sites
(micro-measured ns/site x sites hit, relative to the untraced runtime)
must stay under --trace-disabled-overhead (default 0.02) on every
config — the always-compiled instrumentation must be free when off.

Also gates the differential-fuzzing report written by fuzz_synth
(--json-out) when given via --fuzz FILE: scenarios must actually have
executed, and the run must report zero core-vs-reference divergences
and ok == true.

Every malformed report (unreadable file, invalid JSON, wrong shape)
fails the gate with a readable `file: reason` line — never a traceback.
--self-test exercises exactly that contract against synthetic reports.

Usage:
  scripts/check_bench.py BENCH_route.json BENCH_place.json \
      BENCH_sched.json --min-speedup 1.0 --geomean BENCH_sched.json=1.5
  scripts/check_bench.py --flow BENCH_flow.json --flow-geomean-multi 1.2
  scripts/check_bench.py --service BENCH_service.json --service-p99 2000
  scripts/check_bench.py --fuzz BENCH_fuzz.json
  scripts/check_bench.py --trace BENCH_trace.json
  scripts/check_bench.py --self-test
"""

import argparse
import json
import math
import os
import sys


def load_json(path):
    """Loads a report file, turning every failure mode into a ValueError
    whose message names the file and the reason (no tracebacks: a broken
    artifact should fail the gate readably, like a regression would)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise ValueError(f"cannot read file: {exc.strerror or exc}") from exc
    except json.JSONDecodeError as exc:
        raise ValueError(f"not valid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise ValueError("top level is not a JSON object")
    return doc


def load_benchmarks(path):
    doc = load_json(path)
    benchmarks = doc.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        raise ValueError("no 'benchmarks' array")
    return doc, benchmarks


def check_file(path, min_speedup, geomean_floor):
    errors = []
    _, benchmarks = load_benchmarks(path)
    speedups = []
    for i, entry in enumerate(benchmarks):
        if not isinstance(entry, dict):
            errors.append(f"{path}: benchmarks[{i}] is not an object")
            continue
        name = entry.get("name", "<unnamed>")
        if entry.get("identical") is not True:
            errors.append(
                f"{path}: {name}: core result is not reported identical "
                f"to the reference (identical={entry.get('identical')!r})"
            )
        speedup = entry.get("speedup")
        if not isinstance(speedup, (int, float)) or speedup <= 0:
            errors.append(f"{path}: {name}: missing or invalid speedup")
            continue
        speedups.append(float(speedup))
        if speedup < min_speedup:
            errors.append(
                f"{path}: {name}: speedup {speedup:.3f}x is below the "
                f"{min_speedup:.2f}x floor"
            )
    geomean = None
    if speedups:
        geomean = math.exp(sum(map(math.log, speedups)) / len(speedups))
        if geomean_floor is not None and geomean < geomean_floor:
            errors.append(
                f"{path}: geomean speedup {geomean:.3f}x is below the "
                f"{geomean_floor:.2f}x floor"
            )
    return errors, speedups, geomean


def check_flow(path, min_speedup, geomean_multi_floor, parallel_geomean_floor):
    errors = []
    doc, benchmarks = load_benchmarks(path)

    reused = 0
    rerouted = 0
    has_parallel = isinstance(doc.get("parallel"), dict)
    for i, entry in enumerate(benchmarks):
        if not isinstance(entry, dict):
            errors.append(f"{path}: benchmarks[{i}] is not an object")
            continue
        name = entry.get("name", "<unnamed>")
        if entry.get("identical") is not True:
            errors.append(
                f"{path}: {name}: incremental fixpoint is not reported "
                f"identical to the from-scratch loop "
                f"(identical={entry.get('identical')!r})"
            )
        if has_parallel:
            par = entry.get("parallel")
            if not isinstance(par, dict):
                errors.append(
                    f"{path}: {name}: missing per-config 'parallel' object"
                )
            elif par.get("identical") is not True:
                # Hard determinism gate: the speculative parallel router
                # must be bit-identical to the reference at any thread
                # count, on any host.
                errors.append(
                    f"{path}: {name}: parallel fixpoint is not reported "
                    f"identical to the reference "
                    f"(parallel.identical={par.get('identical')!r})"
                )
        speedup = entry.get("speedup")
        if not isinstance(speedup, (int, float)) or speedup <= 0:
            errors.append(f"{path}: {name}: missing or invalid speedup")
        elif speedup < min_speedup:
            errors.append(
                f"{path}: {name}: end-to-end speedup {speedup:.3f}x is "
                f"below the {min_speedup:.2f}x floor"
            )
        flow = entry.get("flow")
        if not isinstance(flow, dict) or not isinstance(
            flow.get("rounds_detail"), list
        ):
            errors.append(
                f"{path}: {name}: missing per-round reuse detail "
                "(flow.rounds_detail)"
            )
            continue
        for field in ("transports_reused", "transports_rerouted"):
            count = flow.get(field, 0)
            if not isinstance(count, int) or count < 0:
                errors.append(
                    f"{path}: {name}: flow.{field} is not a count "
                    f"({count!r})"
                )
                count = 0
            if field == "transports_reused":
                reused += count
            else:
                rerouted += count

    geomean_multi = doc.get("geomean_speedup_multi_round")
    multi_count = doc.get("multi_round_configs")
    if not isinstance(geomean_multi, (int, float)) or not multi_count:
        errors.append(
            f"{path}: missing geomean_speedup_multi_round / "
            "multi_round_configs (no multi-round flows measured?)"
        )
    elif geomean_multi < geomean_multi_floor:
        errors.append(
            f"{path}: multi-round geomean speedup {geomean_multi:.3f}x "
            f"is below the {geomean_multi_floor:.2f}x floor"
        )

    parallel_note = ""
    if has_parallel:
        par = doc["parallel"]
        par_threads = par.get("threads", 0)
        host_cores = par.get("host_cores", 0)
        if not isinstance(par_threads, int) or not isinstance(host_cores, int):
            errors.append(
                f"{path}: parallel.threads / parallel.host_cores are not "
                f"integers ({par_threads!r}, {host_cores!r})"
            )
            par_threads = host_cores = 0
        par_geomean_multi = par.get("geomean_speedup_multi_round")
        if not isinstance(par_geomean_multi, (int, float)):
            errors.append(
                f"{path}: parallel section is missing "
                "geomean_speedup_multi_round"
            )
            par_geomean_multi = 0.0
        if host_cores >= par_threads > 1:
            if par_geomean_multi < parallel_geomean_floor:
                errors.append(
                    f"{path}: parallel multi-round geomean "
                    f"{par_geomean_multi:.3f}x at {par_threads} threads "
                    f"is below the {parallel_geomean_floor:.2f}x floor"
                )
            parallel_note = (
                f", parallel({par_threads}t) multi-round geomean "
                f"{par_geomean_multi:.2f}x"
            )
        else:
            parallel_note = (
                f", parallel({par_threads}t) perf gate skipped: bench "
                f"host has {host_cores} core(s) "
                f"(determinism still gated)"
            )

    searches = reused + rerouted
    reuse = reused / searches if searches else 0.0
    print(
        f"{path}: {len(benchmarks)} configs, "
        f"geomean {doc.get('geomean_speedup', 0.0):.2f}x, "
        f"multi-round geomean "
        f"{geomean_multi if isinstance(geomean_multi, (int, float)) else 0.0:.2f}x "
        f"over {multi_count} configs, "
        f"{reused}/{searches} transports reused ({reuse:.0%})"
        f"{parallel_note}"
    )
    return errors


def check_service(path, p99_ceiling_ms, error_rate_ceiling):
    errors = []
    doc = load_json(path)
    service = doc.get("service")
    if not isinstance(service, dict):
        raise ValueError("no 'service' object")

    total = service.get("total", 0)
    if not isinstance(total, int) or total <= 0:
        errors.append(f"{path}: no requests were recorded")
    unanswered = service.get("unanswered")
    if unanswered != 0:
        errors.append(
            f"{path}: {unanswered!r} request(s) were dropped without a "
            "definite HTTP status"
        )
    unexpected = service.get("unexpected_status")
    if unexpected != 0:
        errors.append(
            f"{path}: {unexpected!r} request(s) got a status outside "
            "their traffic class's expected set"
        )
    if service.get("identical") is not True:
        errors.append(
            f"{path}: served warm payload is not bit-identical to the "
            f"direct library result (identical="
            f"{service.get('identical')!r})"
        )
    latency = service.get("latency_ms")
    p99 = latency.get("p99") if isinstance(latency, dict) else None
    if not isinstance(p99, (int, float)):
        errors.append(f"{path}: missing latency_ms.p99")
    elif p99 > p99_ceiling_ms:
        errors.append(
            f"{path}: p99 latency {p99:.1f} ms exceeds the "
            f"{p99_ceiling_ms:.0f} ms ceiling"
        )
    error_rate = service.get("error_rate")
    if not isinstance(error_rate, (int, float)):
        errors.append(f"{path}: missing error_rate")
    elif error_rate > error_rate_ceiling:
        errors.append(
            f"{path}: error rate {error_rate:.4f} exceeds the "
            f"{error_rate_ceiling:.4f} ceiling"
        )
    # Server-side view: per-endpoint latency histograms scraped from
    # /metrics at the end of the run. An empty {} means the scrape or the
    # parse failed — gate on it so the histograms can't silently vanish.
    endpoints = service.get("server_endpoints")
    if not isinstance(endpoints, dict) or not endpoints:
        errors.append(
            f"{path}: missing server_endpoints (per-endpoint latency "
            "histograms scraped from /metrics)"
        )
    else:
        for name in ("synthesize", "healthz", "metrics", "trace"):
            endpoint = endpoints.get(name)
            if not isinstance(endpoint, dict):
                errors.append(
                    f"{path}: server_endpoints.{name} is missing"
                )
                continue
            for field in ("count", "p50_ms", "p90_ms", "p99_ms"):
                if not isinstance(endpoint.get(field), (int, float)):
                    errors.append(
                        f"{path}: server_endpoints.{name}.{field} is "
                        "missing or not a number"
                    )
            if name == "synthesize" and not endpoint.get("count"):
                errors.append(
                    f"{path}: server recorded no synthesize latencies "
                    "(server_endpoints.synthesize.count is 0)"
                )
    summary = (
        f"{path}: {total} requests, unanswered={unanswered}, "
        f"unexpected={unexpected}, p99={p99} ms, error_rate={error_rate}"
    )
    print(summary)
    return errors


def check_fuzz(path):
    """Gates a fuzz_synth --json-out report: the differential fuzzer must
    have executed scenarios and found zero core-vs-reference divergences."""
    errors = []
    doc = load_json(path)
    fuzz = doc.get("fuzz")
    if not isinstance(fuzz, dict):
        raise ValueError("no 'fuzz' object")

    executed = fuzz.get("executed")
    if not isinstance(executed, int) or executed <= 0:
        errors.append(
            f"{path}: no scenarios were executed (executed={executed!r})"
        )
    divergences = fuzz.get("divergences")
    if divergences != 0:
        errors.append(
            f"{path}: {divergences!r} core-vs-reference divergence(s) — "
            "see the shrunk repros the fuzzer wrote alongside this report"
        )
    if fuzz.get("ok") is not True:
        errors.append(
            f"{path}: fuzz run did not report ok "
            f"(ok={fuzz.get('ok')!r})"
        )
    print(
        f"{path}: seed {fuzz.get('seed')}, {executed} scenario(s) "
        f"({fuzz.get('corpus_replayed', 0)} from corpus), "
        f"divergences={divergences}, "
        f"degenerate={fuzz.get('degenerate')}, "
        f"non_converged={fuzz.get('non_converged')}, "
        f"{fuzz.get('operations')} ops / {fuzz.get('transports')} "
        f"transports in {fuzz.get('elapsed_s')} s"
    )
    return errors


def check_trace(path, disabled_ceiling, enabled_ceiling):
    """Gates a trace_overhead --json-out report: tracing must never change
    results, must cost little when on, and ~nothing when off."""
    errors = []
    doc, benchmarks = load_benchmarks(path)

    if doc.get("identical") is not True:
        errors.append(
            f"{path}: traced run is not reported identical to the "
            f"untraced run (identical={doc.get('identical')!r})"
        )
    for i, entry in enumerate(benchmarks):
        if not isinstance(entry, dict):
            errors.append(f"{path}: benchmarks[{i}] is not an object")
            continue
        name = entry.get("name", "<unnamed>")
        if entry.get("identical") is not True:
            errors.append(
                f"{path}: {name}: traced result diverged from the "
                f"untraced result (identical={entry.get('identical')!r})"
            )
        projected = entry.get("projected_disabled_overhead")
        if not isinstance(projected, (int, float)) or projected < 0:
            errors.append(
                f"{path}: {name}: missing projected_disabled_overhead"
            )
        elif projected > disabled_ceiling:
            errors.append(
                f"{path}: {name}: projected disabled-site overhead "
                f"{projected:.2%} exceeds the {disabled_ceiling:.0%} "
                "ceiling"
            )

    geomean_enabled = doc.get("geomean_enabled_overhead")
    if not isinstance(geomean_enabled, (int, float)):
        errors.append(f"{path}: missing geomean_enabled_overhead")
    elif geomean_enabled > enabled_ceiling:
        errors.append(
            f"{path}: geomean enabled overhead {geomean_enabled:.2%} "
            f"exceeds the {enabled_ceiling:.0%} ceiling"
        )
    max_disabled = doc.get("max_projected_disabled_overhead")
    if not isinstance(max_disabled, (int, float)):
        errors.append(f"{path}: missing max_projected_disabled_overhead")

    micro = doc.get("micro")
    micro = micro if isinstance(micro, dict) else {}
    print(
        f"{path}: {len(benchmarks)} configs, "
        f"{micro.get('ns_per_site_disabled', '?')} ns/site disabled, "
        f"{micro.get('ns_per_event_enabled', '?')} ns/event enabled, "
        f"geomean enabled overhead "
        f"{geomean_enabled if isinstance(geomean_enabled, (int, float)) else 0.0:.2%}, "
        f"max projected disabled overhead "
        f"{max_disabled if isinstance(max_disabled, (int, float)) else 0.0:.2%}"
    )
    return errors


def self_test():
    """Unit checks for the gate itself: every malformed-report shape must
    produce a readable `file: reason` line and exit 1 — never a traceback —
    and well-formed reports must pass. Run from CI before the real gates."""
    import contextlib
    import io
    import tempfile

    good_perf = {
        "benchmarks": [{"name": "b1", "identical": True, "speedup": 2.0}]
    }
    good_fuzz = {
        "fuzz": {
            "seed": 1,
            "requested": 10,
            "executed": 10,
            "corpus_replayed": 4,
            "divergences": 0,
            "degenerate": 0,
            "non_converged": 2,
            "operations": 170,
            "transports": 120,
            "max_fixpoint_rounds": 21,
            "elapsed_s": 0.05,
            "ok": True,
        }
    }

    def diverged_fuzz():
        doc = json.loads(json.dumps(good_fuzz))
        doc["fuzz"]["divergences"] = 2
        doc["fuzz"]["ok"] = False
        return doc

    good_trace = {
        "reps": 3,
        "micro": {"ns_per_site_disabled": 0.1, "ns_per_event_enabled": 70.0},
        "benchmarks": [
            {
                "name": "PCR/dcsa",
                "disabled_seconds": 0.01,
                "enabled_seconds": 0.0104,
                "events": 500,
                "enabled_overhead": 0.04,
                "projected_disabled_overhead": 0.0001,
                "identical": True,
            }
        ],
        "geomean_enabled_overhead": 0.04,
        "max_projected_disabled_overhead": 0.0001,
        "identical": True,
    }

    def costly_trace():
        doc = json.loads(json.dumps(good_trace))
        doc["benchmarks"][0]["projected_disabled_overhead"] = 0.05
        doc["max_projected_disabled_overhead"] = 0.05
        doc["geomean_enabled_overhead"] = 0.25
        return doc

    def divergent_trace():
        doc = json.loads(json.dumps(good_trace))
        doc["benchmarks"][0]["identical"] = False
        doc["identical"] = False
        return doc

    good_service = {
        "service": {
            "total": 20,
            "unanswered": 0,
            "unexpected_status": 0,
            "identical": True,
            "latency_ms": {"p99": 12.0},
            "error_rate": 0.0,
            "server_endpoints": {
                name: {
                    "count": 5,
                    "mean_ms": 1.0,
                    "p50_ms": 1.0,
                    "p90_ms": 2.0,
                    "p99_ms": 3.0,
                    "max_ms": 4.0,
                }
                for name in ("synthesize", "healthz", "metrics", "trace")
            },
        }
    }

    def endpointless_service():
        doc = json.loads(json.dumps(good_service))
        del doc["service"]["server_endpoints"]
        return doc

    failures = []

    def case(name, content, extra_argv, want_exit, want_text=()):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "report.json")
            if content is not None:
                with open(path, "w", encoding="utf-8") as fh:
                    if isinstance(content, str):
                        fh.write(content)
                    else:
                        json.dump(content, fh)
            out = io.StringIO()
            try:
                with contextlib.redirect_stdout(out), contextlib.redirect_stderr(
                    out
                ):
                    code = main([path] if not extra_argv else extra_argv + [path])
            except SystemExit as exc:  # argparse errors
                code = exc.code
            except Exception as exc:  # noqa: BLE001 — a traceback IS the bug
                failures.append(
                    f"{name}: raised {type(exc).__name__}: {exc} "
                    "(gates must report malformed files, not crash)"
                )
                return
            text = out.getvalue()
            if code != want_exit:
                failures.append(
                    f"{name}: exit {code}, want {want_exit}; output:\n{text}"
                )
            for needle in want_text:
                if needle not in text:
                    failures.append(
                        f"{name}: output is missing {needle!r}; got:\n{text}"
                    )

    case("good perf file passes", good_perf, [], 0, ["all benchmark gates"])
    case("missing file is readable", None, [], 1, ["cannot read file"])
    case("invalid JSON is readable", "{not json", [], 1, ["not valid JSON"])
    case("non-object top level", "[1, 2]", [], 1, ["not a JSON object"])
    case(
        "non-object benchmark entry",
        {"benchmarks": ["oops"]},
        [],
        1,
        ["benchmarks[0] is not an object"],
    )
    case(
        "slow benchmark fails the floor",
        {"benchmarks": [{"name": "b", "identical": True, "speedup": 0.5}]},
        [],
        1,
        ["below the 1.00x floor"],
    )
    case(
        "service latency_ms not an object",
        {
            "service": {
                "total": 5,
                "unanswered": 0,
                "unexpected_status": 0,
                "identical": True,
                "latency_ms": "fast",
                "error_rate": 0.0,
            }
        },
        ["--service"],
        1,
        ["missing latency_ms.p99"],
    )
    case(
        "good service report passes",
        good_service,
        ["--service"],
        0,
        ["all benchmark gates"],
    )
    case(
        "service without endpoint histograms fails",
        endpointless_service(),
        ["--service"],
        1,
        ["missing server_endpoints"],
    )
    case(
        "good trace report passes",
        good_trace,
        ["--trace"],
        0,
        ["geomean enabled overhead"],
    )
    case(
        "costly trace sites fail both ceilings",
        costly_trace(),
        ["--trace"],
        1,
        ["projected disabled-site overhead", "geomean enabled overhead 25.00%"],
    )
    case(
        "divergent trace run fails",
        divergent_trace(),
        ["--trace"],
        1,
        ["diverged from the untraced result"],
    )
    case("good fuzz report passes", good_fuzz, ["--fuzz"], 0, ["divergences=0"])
    case(
        "fuzz divergence fails",
        diverged_fuzz(),
        ["--fuzz"],
        1,
        ["divergence(s)", "did not report ok"],
    )
    case(
        "fuzz report without fuzz object",
        {"benchmarks": []},
        ["--fuzz"],
        1,
        ["no 'fuzz' object"],
    )
    case(
        "fuzz report with zero executed",
        {"fuzz": {"executed": 0, "divergences": 0, "ok": True}},
        ["--fuzz"],
        1,
        ["no scenarios were executed"],
    )

    if failures:
        print(f"{len(failures)} self-test failure(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("check_bench.py self-test: all cases passed")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Fail when a core-vs-reference bench regresses."
    )
    parser.add_argument(
        "files", nargs="*", default=[], help="BENCH_*.json perf files"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.0,
        help="per-benchmark speedup floor (default: 1.0)",
    )
    parser.add_argument(
        "--geomean",
        action="append",
        default=[],
        metavar="FILE=X",
        help="geomean speedup floor for one file, by basename "
        "(e.g. BENCH_sched.json=1.5); repeatable",
    )
    parser.add_argument(
        "--flow",
        action="append",
        default=[],
        metavar="FILE",
        help="BENCH_flow.json route–retime fixpoint report(s) to gate; "
        "repeatable",
    )
    parser.add_argument(
        "--flow-min-speedup",
        type=float,
        default=0.85,
        help="per-config end-to-end speedup floor for --flow files "
        "(default: 0.85 — slack only for timer noise on single-round "
        "flows, whose theoretical best is parity; pooled probe buffers "
        "keep the footprint-recording overhead to a few percent)",
    )
    parser.add_argument(
        "--flow-geomean-multi",
        type=float,
        default=1.2,
        help="geomean speedup floor over multi-round flows for --flow "
        "files (default: 1.2)",
    )
    parser.add_argument(
        "--flow-parallel-geomean",
        type=float,
        default=1.3,
        help="multi-round geomean floor for the parallel section of "
        "--flow files (default: 1.3); enforced only when the bench "
        "host had at least as many cores as routing threads",
    )
    parser.add_argument(
        "--service",
        action="append",
        default=[],
        metavar="FILE",
        help="BENCH_service.json load report(s) to gate; repeatable",
    )
    parser.add_argument(
        "--service-p99",
        type=float,
        default=5000.0,
        help="service p99 latency ceiling in ms (default: 5000)",
    )
    parser.add_argument(
        "--service-error-rate",
        type=float,
        default=0.0,
        help="service error-rate ceiling (default: 0.0)",
    )
    parser.add_argument(
        "--fuzz",
        action="append",
        default=[],
        metavar="FILE",
        help="BENCH_fuzz.json differential-fuzzing report(s) to gate "
        "(fuzz_synth --json-out); repeatable",
    )
    parser.add_argument(
        "--trace",
        action="append",
        default=[],
        metavar="FILE",
        help="BENCH_trace.json tracing-overhead report(s) to gate "
        "(trace_overhead --json-out); repeatable",
    )
    parser.add_argument(
        "--trace-disabled-overhead",
        type=float,
        default=0.02,
        help="per-config ceiling on the projected cost of disabled trace "
        "sites, as a fraction of untraced runtime (default: 0.02)",
    )
    parser.add_argument(
        "--trace-enabled-overhead",
        type=float,
        default=0.10,
        help="geomean ceiling on the slowdown with tracing enabled "
        "(default: 0.10)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run the gate's own unit checks against synthetic reports "
        "and exit",
    )
    args = parser.parse_args(argv)
    if args.self_test:
        return self_test()
    if (
        not args.files
        and not args.service
        and not args.flow
        and not args.fuzz
        and not args.trace
    ):
        parser.error(
            "nothing to check: give perf files, --flow, --service, "
            "--fuzz, and/or --trace"
        )

    geomean_floors = {}
    for spec in args.geomean:
        name, sep, value = spec.partition("=")
        if not sep:
            parser.error(f"--geomean needs FILE=X, got {spec!r}")
        geomean_floors[os.path.basename(name)] = float(value)

    all_errors = []
    for path in args.files:
        floor = geomean_floors.get(os.path.basename(path))
        try:
            errors, speedups, geomean = check_file(
                path, args.min_speedup, floor
            )
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            all_errors.append(f"{path}: {exc}")
            continue
        all_errors.extend(errors)
        summary = (
            f"{path}: {len(speedups)} benchmarks, "
            f"min {min(speedups):.2f}x, geomean {geomean:.2f}x"
            if speedups
            else f"{path}: no speedups"
        )
        if floor is not None:
            summary += f" (floor {floor:.2f}x)"
        print(summary)

    for path in args.flow:
        try:
            all_errors.extend(
                check_flow(
                    path,
                    args.flow_min_speedup,
                    args.flow_geomean_multi,
                    args.flow_parallel_geomean,
                )
            )
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            all_errors.append(f"{path}: {exc}")

    for path in args.service:
        try:
            all_errors.extend(
                check_service(
                    path, args.service_p99, args.service_error_rate
                )
            )
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            all_errors.append(f"{path}: {exc}")

    for path in args.fuzz:
        try:
            all_errors.extend(check_fuzz(path))
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            all_errors.append(f"{path}: {exc}")

    for path in args.trace:
        try:
            all_errors.extend(
                check_trace(
                    path,
                    args.trace_disabled_overhead,
                    args.trace_enabled_overhead,
                )
            )
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            all_errors.append(f"{path}: {exc}")

    if all_errors:
        print(f"\n{len(all_errors)} regression(s):", file=sys.stderr)
        for error in all_errors:
            print(f"  {error}", file=sys.stderr)
        return 1
    print("all benchmark gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
