#!/usr/bin/env python3
"""Benchmark regression gate for the core-vs-reference perf JSONs.

Parses the BENCH_*.json files written by route_perf / place_perf /
sched_perf (--json-out) and fails when:

  * any benchmark entry is missing the "identical" key or reports
    identical != true (the core diverged from its reference oracle), or
  * any benchmark's core-vs-reference speedup drops below --min-speedup
    (default 1.0: the core must never be slower than the reference), or
  * a file given via --geomean FILE=X has a geometric-mean speedup below
    X (e.g. --geomean BENCH_sched.json=1.5 enforces the scheduler core's
    acceptance threshold).

Usage:
  scripts/check_bench.py BENCH_route.json BENCH_place.json \
      BENCH_sched.json --min-speedup 1.0 --geomean BENCH_sched.json=1.5
"""

import argparse
import json
import math
import os
import sys


def load_benchmarks(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    benchmarks = doc.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        raise ValueError(f"{path}: no 'benchmarks' array")
    return benchmarks


def check_file(path, min_speedup, geomean_floor):
    errors = []
    benchmarks = load_benchmarks(path)
    speedups = []
    for entry in benchmarks:
        name = entry.get("name", "<unnamed>")
        if entry.get("identical") is not True:
            errors.append(
                f"{path}: {name}: core result is not reported identical "
                f"to the reference (identical={entry.get('identical')!r})"
            )
        speedup = entry.get("speedup")
        if not isinstance(speedup, (int, float)) or speedup <= 0:
            errors.append(f"{path}: {name}: missing or invalid speedup")
            continue
        speedups.append(float(speedup))
        if speedup < min_speedup:
            errors.append(
                f"{path}: {name}: speedup {speedup:.3f}x is below the "
                f"{min_speedup:.2f}x floor"
            )
    geomean = None
    if speedups:
        geomean = math.exp(sum(map(math.log, speedups)) / len(speedups))
        if geomean_floor is not None and geomean < geomean_floor:
            errors.append(
                f"{path}: geomean speedup {geomean:.3f}x is below the "
                f"{geomean_floor:.2f}x floor"
            )
    return errors, speedups, geomean


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Fail when a core-vs-reference bench regresses."
    )
    parser.add_argument("files", nargs="+", help="BENCH_*.json files")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.0,
        help="per-benchmark speedup floor (default: 1.0)",
    )
    parser.add_argument(
        "--geomean",
        action="append",
        default=[],
        metavar="FILE=X",
        help="geomean speedup floor for one file, by basename "
        "(e.g. BENCH_sched.json=1.5); repeatable",
    )
    args = parser.parse_args(argv)

    geomean_floors = {}
    for spec in args.geomean:
        name, sep, value = spec.partition("=")
        if not sep:
            parser.error(f"--geomean needs FILE=X, got {spec!r}")
        geomean_floors[os.path.basename(name)] = float(value)

    all_errors = []
    for path in args.files:
        floor = geomean_floors.get(os.path.basename(path))
        try:
            errors, speedups, geomean = check_file(
                path, args.min_speedup, floor
            )
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            all_errors.append(f"{path}: {exc}")
            continue
        all_errors.extend(errors)
        summary = (
            f"{path}: {len(speedups)} benchmarks, "
            f"min {min(speedups):.2f}x, geomean {geomean:.2f}x"
            if speedups
            else f"{path}: no speedups"
        )
        if floor is not None:
            summary += f" (floor {floor:.2f}x)"
        print(summary)

    if all_errors:
        print(f"\n{len(all_errors)} regression(s):", file=sys.stderr)
        for error in all_errors:
            print(f"  {error}", file=sys.stderr)
        return 1
    print("all benchmark gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
