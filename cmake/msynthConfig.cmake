include("${CMAKE_CURRENT_LIST_DIR}/msynthTargets.cmake")
