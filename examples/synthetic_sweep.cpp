// Scaling sweep with the synthetic benchmark generator: how both flows
// behave as assays grow from 10 to 80 operations. Prints a table and a CSV
// block for plotting.
//
//   build/examples/synthetic_sweep [max_ops]

#include <cstdlib>
#include <iostream>

#include "bench_suite/synthetic.hpp"
#include "core/comparison.hpp"
#include "report/table.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace fbmb;
  const int max_ops = argc > 1 ? std::atoi(argv[1]) : 80;

  TextTable table({"Ops", "Ours exec (s)", "BA exec (s)", "Exec imp (%)",
                   "Ours Ur (%)", "BA Ur (%)", "Ours len (mm)",
                   "BA len (mm)"});

  std::cout << "=== synthetic scaling sweep (seeded, deterministic) ===\n";
  for (int ops = 10; ops <= max_ops; ops += 10) {
    SyntheticSpec spec;
    spec.operations = ops;
    spec.seed = 1000 + static_cast<std::uint64_t>(ops);
    spec.allocation = {4, 2, 2, 2};
    const SequencingGraph graph = generate_synthetic_graph(spec);
    const Allocation alloc(spec.allocation);
    const WashModel wash;
    const ComparisonRow row = compare_flows(
        "sweep" + std::to_string(ops), graph, alloc, wash);
    table.add_row({std::to_string(ops),
                   format_double(row.ours.completion_time, 1),
                   format_double(row.baseline.completion_time, 1),
                   format_double(row.execution_improvement_pct(), 1),
                   format_double(row.ours.utilization * 100.0, 1),
                   format_double(row.baseline.utilization * 100.0, 1),
                   format_double(row.ours.channel_length_mm, 0),
                   format_double(row.baseline.channel_length_mm, 0)});
  }
  std::cout << table << "\nCSV:\n" << table.to_csv();
  return 0;
}
