// Quickstart: describe a bioassay, allocate components, run the full
// DCSA synthesis flow, inspect every stage's result.
//
//   build/examples/quickstart

#include <iostream>

#include "core/synthesis.hpp"
#include "graph/graph_builder.hpp"

int main() {
  using namespace fbmb;

  // 1. Describe the bioassay as a sequencing graph. Each operation has an
  //    execution time (seconds) and a wash time for the residue its output
  //    fluid leaves behind (derived from the fluid's diffusion coefficient;
  //    specifying wash seconds directly is the convenient shorthand).
  GraphBuilder assay;
  const auto lyse = assay.mix("lyse", 5, /*wash_seconds=*/0.2);
  const auto stain = assay.mix("stain", 6, 4.0);
  const auto combine = assay.mix("combine", 4, 4.0);
  const auto incubate = assay.heat("incubate", 8, 2.0);
  const auto read = assay.detect("read", 3, 0.2);
  assay.dep(lyse, combine);
  assay.dep(stain, combine);
  assay.dep(combine, incubate);
  assay.dep(incubate, read);

  // 2. Allocate on-chip components: (mixers, heaters, filters, detectors).
  const Allocation chip_resources(AllocationSpec{2, 1, 0, 1});

  // 3. Run the complete flow: DCSA binding & scheduling -> SA placement ->
  //    conflict-aware wash-weighted routing.
  const SynthesisResult result = synthesize_dcsa(
      assay.build(), chip_resources, assay.wash_model());

  // 4. Inspect the outcome.
  std::cout << "=== quickstart bioassay ===\n";
  std::cout << result.summary() << "\n\n";
  std::cout << "Schedule:\n" << result.schedule.to_string(assay.graph());
  std::cout << "\nFloorplan (" << result.chip.grid_width << "x"
            << result.chip.grid_height << " cells, "
            << result.chip.cell_pitch_mm << " mm pitch):\n"
            << result.placement.to_ascii(chip_resources, result.chip);
  std::cout << "\nRouted transports:\n";
  for (const auto& path : result.routing.paths) {
    std::cout << "  transport " << path.transport_id << ": "
              << path.length_cells() << " cells, departs " << path.start
              << " s";
    if (path.cache_until > path.transport_end) {
      std::cout << ", cached in channel until " << path.cache_until << " s";
    }
    std::cout << '\n';
  }
  return 0;
}
