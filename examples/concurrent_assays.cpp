// Concurrent multi-assay synthesis: PCR and IVD merged onto one chip.
//
// Section I of the paper motivates FBMBs with the concurrent execution of
// many assays on one platform. This example merges two real protocols
// into a single sequencing graph, synthesizes both flows on a shared
// allocation, and renders the combined schedule as a Gantt chart — the
// channel row shows distributed channel storage absorbing the cross-assay
// resource contention.
//
//   build/examples/concurrent_assays

#include <iostream>

#include "bench_suite/benchmarks.hpp"
#include "core/comparison.hpp"
#include "graph/graph_algorithms.hpp"
#include "report/gantt.hpp"
#include "util/strings.hpp"

int main() {
  using namespace fbmb;

  const Benchmark pcr = make_pcr();
  const Benchmark ivd = make_ivd();

  const SequencingGraph merged =
      merge_graphs({&pcr.graph, &ivd.graph}, {"pcr:", "ivd:"});
  // Shared chip: the union of both allocations' needs.
  const AllocationSpec shared{3, 0, 0, 2};
  const Allocation alloc(shared);

  // Wash model: IVD's overrides cover both assays' wash classes here; in
  // general, merge the override tables of the sources.
  WashModel wash = ivd.wash;

  std::cout << "=== concurrent PCR + IVD on " << shared.to_string()
            << " (" << merged.operation_count() << " ops) ===\n\n";

  const ComparisonRow row =
      compare_flows("PCR+IVD", merged, alloc, wash);

  std::cout << "ours: " << row.ours.summary() << '\n';
  std::cout << "BA:   " << row.baseline.summary() << "\n\n";

  // Sequential reference: each assay synthesized alone; total = sum.
  const auto pcr_alone =
      synthesize_dcsa(pcr.graph, Allocation(pcr.allocation), pcr.wash);
  const auto ivd_alone =
      synthesize_dcsa(ivd.graph, Allocation(ivd.allocation), ivd.wash);
  const double sequential =
      pcr_alone.completion_time + ivd_alone.completion_time;
  std::cout << "sequential (one assay at a time): "
            << format_double(sequential, 1) << " s -> concurrent saves "
            << format_double(improvement_percent(row.ours.completion_time,
                                                 sequential), 1)
            << " %\n\n";

  GanttOptions gantt_opts;
  gantt_opts.seconds_per_column = 1.0;
  std::cout << "DCSA schedule (letters = ops, w = wash, digits = fluids "
               "parked in channels):\n"
            << render_gantt(row.ours.schedule, merged, alloc, gantt_opts);
  return 0;
}
