// synth_server — the resident synthesis daemon (docs/SERVICE.md).
//
// Serves POST /synthesize, GET /healthz and GET /metrics until SIGTERM or
// SIGINT, then drains gracefully: in-flight jobs get --drain-ms to finish
// (stragglers are cancelled but still answered), the result cache is
// spilled to --cache-file, and the process exits 0.
//
//   ./synth_server --port 8080
//   ./synth_server --port 0 --port-file port.txt --cache-file cache.json
//
// --max-stall-ms enables the request "stall_ms" knob (load tests only;
// keep it 0 in real deployments).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "service/server.hpp"
#include "trace/chrome_export.hpp"
#include "trace/trace.hpp"

namespace {

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --host HOST          bind address (default 127.0.0.1)\n"
      << "  --port N             TCP port; 0 = kernel-assigned (default 0)\n"
      << "  --port-file PATH     write the bound port to PATH (for port 0)\n"
      << "  --threads N          synthesis worker threads (default: cores)\n"
      << "  --queue N            job queue capacity (default 1024)\n"
      << "  --max-connections N  concurrent connection cap (default 64)\n"
      << "  --drain-ms N         shutdown grace for in-flight jobs "
         "(default 2000)\n"
      << "  --max-stall-ms N     cap for the stall_ms test knob "
         "(default 0 = off)\n"
      << "  --route-threads N    default routing concurrency per job "
         "(default 1)\n"
      << "  --max-route-threads N  cap for the request \"threads\" knob "
         "(default 1 = serial)\n"
      << "  --cache-file PATH    load/spill the result cache here\n"
      << "  --trace-out PATH     enable tracing; write Chrome-trace JSON "
         "at shutdown\n";
}

bool parse_long(const char* text, long& out) {
  char* end = nullptr;
  out = std::strtol(text, &end, 10);
  return end != text && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  fbmb::service::ServerOptions options;
  std::string port_file;
  std::string trace_out;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    long value = 0;
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--host" && has_value) {
      options.host = argv[++i];
    } else if (arg == "--port-file" && has_value) {
      port_file = argv[++i];
    } else if (arg == "--cache-file" && has_value) {
      options.cache_spill_path = argv[++i];
    } else if (arg == "--trace-out" && has_value) {
      trace_out = argv[++i];
    } else if (has_value && parse_long(argv[i + 1], value)) {
      ++i;
      if (arg == "--port" && value >= 0 && value <= 65535) {
        options.port = static_cast<std::uint16_t>(value);
      } else if (arg == "--threads" && value >= 0) {
        options.engine.threads = static_cast<std::size_t>(value);
      } else if (arg == "--queue" && value > 0) {
        options.engine.queue_capacity = static_cast<std::size_t>(value);
      } else if (arg == "--max-connections" && value > 0) {
        options.max_connections = static_cast<std::size_t>(value);
      } else if (arg == "--drain-ms" && value >= 0) {
        options.drain_budget_ms = static_cast<int>(value);
      } else if (arg == "--max-stall-ms" && value >= 0) {
        options.max_stall_ms = static_cast<int>(value);
      } else if (arg == "--route-threads" && value >= 1) {
        options.engine.route_threads = static_cast<std::size_t>(value);
        if (static_cast<long>(options.max_route_threads) < value) {
          options.max_route_threads = static_cast<int>(value);
        }
      } else if (arg == "--max-route-threads" && value >= 1) {
        options.max_route_threads = static_cast<int>(value);
      } else {
        std::cerr << "bad option/value: " << arg << " " << argv[i] << "\n";
        usage(argv[0]);
        return 2;
      }
    } else {
      std::cerr << "bad option: " << arg << "\n";
      usage(argv[0]);
      return 2;
    }
  }

  if (!trace_out.empty()) {
    fbmb::trace::TraceRecorder::instance().set_enabled(true);
    fbmb::trace::TraceRecorder::instance().set_current_thread_name(
        "synth-server-main");
  }

  fbmb::service::SynthServer server(options);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }

  if (!port_file.empty()) {
    std::ofstream out(port_file, std::ios::trunc);
    out << server.port() << "\n";
  }
  std::cout << "synth_server listening on " << options.host << ":"
            << server.port() << std::endl;

  {
    fbmb::service::SignalDrain drain(server);
    server.wait_shutdown_requested();
    std::cout << "synth_server draining..." << std::endl;
    server.shutdown();
  }

  if (!trace_out.empty()) {
    std::string error;
    if (fbmb::trace::write_chrome_trace_file(trace_out, &error)) {
      std::cout << "trace written to " << trace_out << std::endl;
    } else {
      std::cerr << "trace-out: " << error << std::endl;
    }
  }

  std::cout << "synth_server stopped; final metrics:\n"
            << server.metrics_json() << std::endl;
  return 0;
}
