// Custom assay with explicit fluids: build a sequencing graph from raw
// diffusion coefficients (rather than wash-second shorthand), tune the
// synthesis options, and compare DCSA against the baseline on your own
// protocol — the workflow a downstream user follows for a new bioassay.
//
//   build/examples/custom_assay

#include <iostream>

#include "core/comparison.hpp"
#include "graph/sequencing_graph.hpp"
#include "report/table.hpp"
#include "util/strings.hpp"

int main() {
  using namespace fbmb;

  // A small immunoassay-like protocol with heterogeneous fluids: cell
  // suspensions (slow-diffusing, expensive to wash) and buffers (fast).
  SequencingGraph assay;
  const Fluid cells{"cell_suspension", diffusion::kCell};
  const Fluid antibody{"antibody_mix", diffusion::kProtein};
  const Fluid buffer{"buffer", diffusion::kSmallMolecule};
  const Fluid conjugate{"conjugate", diffusion::kLargeComplex};

  const auto capture = assay.add_operation("capture", ComponentType::kMixer,
                                           6.0, cells);
  const auto block = assay.add_operation("block", ComponentType::kMixer,
                                         4.0, buffer);
  const auto bind = assay.add_operation("bind", ComponentType::kMixer, 7.0,
                                        antibody);
  const auto rinse = assay.add_operation("rinse", ComponentType::kFilter,
                                         3.0, buffer);
  const auto label = assay.add_operation("label", ComponentType::kMixer,
                                         5.0, conjugate);
  const auto develop = assay.add_operation("develop", ComponentType::kHeater,
                                           6.0, conjugate);
  const auto readout = assay.add_operation("readout",
                                           ComponentType::kDetector, 2.0,
                                           buffer);
  assay.add_dependency(capture, bind);
  assay.add_dependency(block, bind);
  assay.add_dependency(bind, rinse);
  assay.add_dependency(rinse, label);
  assay.add_dependency(label, develop);
  assay.add_dependency(develop, readout);

  if (const auto err = assay.validate()) {
    std::cerr << "invalid assay: " << *err << '\n';
    return 1;
  }

  const Allocation alloc(AllocationSpec{2, 1, 1, 1});
  const WashModel wash;  // the paper-anchored log-linear model

  // Tune the flow: finer SA schedule and a tighter chip.
  SynthesisOptions options;
  options.chip.cell_pitch_mm = 5.0;
  options.placer.sa.iterations_per_temperature = 200;
  options.placer.restarts = 4;

  const ComparisonRow row =
      compare_flows("custom", assay, alloc, wash, options);

  TextTable table({"Metric", "DCSA (ours)", "Baseline", "Imp (%)"},
                  {Align::kLeft, Align::kRight, Align::kRight, Align::kRight});
  table.add_row({"Execution time (s)",
                 format_double(row.ours.completion_time, 1),
                 format_double(row.baseline.completion_time, 1),
                 format_double(row.execution_improvement_pct(), 1)});
  table.add_row({"Resource utilization (%)",
                 format_double(row.ours.utilization * 100.0, 1),
                 format_double(row.baseline.utilization * 100.0, 1),
                 format_double(row.utilization_improvement_pct(), 1)});
  table.add_row({"Channel length (mm)",
                 format_double(row.ours.channel_length_mm, 0),
                 format_double(row.baseline.channel_length_mm, 0),
                 format_double(row.channel_length_improvement_pct(), 1)});
  table.add_row({"Channel cache time (s)",
                 format_double(row.ours.total_cache_time, 1),
                 format_double(row.baseline.total_cache_time, 1), ""});
  table.add_row({"Channel wash time (s)",
                 format_double(row.ours.channel_wash_time, 1),
                 format_double(row.baseline.channel_wash_time, 1), ""});
  std::cout << "=== custom immunoassay, (2,1,1,1) allocation ===\n" << table;

  std::cout << "\nDCSA schedule:\n" << row.ours.schedule.to_string(assay);
  return 0;
}
