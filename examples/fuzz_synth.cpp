// Differential fuzzing driver: random scenarios through every core-vs-
// reference pair, with shrinking and corpus replay.
//
// Generates seeded random scenarios (src/testgen/generator.hpp) and runs
// each through the differential oracle — scheduler, placer, router, and
// route-retime fixpoint cores against their frozen reference twins, plus
// the speculative parallel router protocol matrix, the schedule/routing
// validators, and the discrete-event chip simulator. Any divergence is
// written to --repro-dir as a self-contained assay file; with --shrink it
// is first reduced to a minimal repro by the deterministic greedy
// shrinker. Shrunk repros are meant to be committed under tests/corpus/,
// where corpus_regression_test replays them forever.
//
//   build/examples/fuzz_synth [options]
//
//   --seed S           master seed (default: 1)
//   --count N          scenarios to generate (default: 200)
//   --time-budget SEC  stop early after SEC seconds (default: 0 = none)
//   --max-ops N        generator operation ceiling (default: 18)
//   --threads N        also run the parallel fixpoint on a real thread
//                      pool with N workers (default: 0 = only the
//                      deterministic inline executors)
//   --shrink           shrink divergent scenarios before writing them
//   --repro-dir DIR    where divergence repros go (default: repros)
//   --corpus DIR       replay every *.assay under DIR before fuzzing
//   --inject KIND      apply a known fault (schedule | route) to the core
//                      side of every oracle run; for harness testing
//   --json-out PATH    write a machine-readable summary (gated in CI by
//                      scripts/check_bench.py --fuzz)
//   --self-test        prove the harness works: for each injection kind,
//                      find a divergence, shrink it, and require the
//                      minimal repro to have at most 8 operations
//   --trace-out PATH   enable tracing; write Chrome-trace JSON on exit
//                      (spans cover the core side of every oracle run)
//
// Exit status: 0 when every scenario passed (or the self-test proved
// detection), 1 on any divergence, 2 on usage errors.

#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "testgen/generator.hpp"
#include "trace/chrome_export.hpp"
#include "trace/trace.hpp"
#include "testgen/oracle.hpp"
#include "testgen/scenario.hpp"
#include "testgen/shrinker.hpp"

namespace {

using namespace fbmb;

void print_usage() {
  std::cerr
      << "usage: fuzz_synth [--seed S] [--count N] [--time-budget SEC]\n"
         "                  [--max-ops N] [--threads N] [--shrink]\n"
         "                  [--repro-dir DIR] [--corpus DIR]\n"
         "                  [--inject schedule|route] [--json-out PATH]\n"
         "                  [--self-test] [--trace-out PATH]\n";
}

struct Totals {
  std::uint64_t executed = 0;
  std::uint64_t divergences = 0;
  std::uint64_t degenerate = 0;
  std::uint64_t corpus_replayed = 0;
  std::uint64_t non_converged = 0;
  std::uint64_t operations = 0;
  std::uint64_t transports = 0;
  std::uint64_t max_fixpoint_rounds = 0;
};

void tally(Totals& totals, const OracleReport& report) {
  ++totals.executed;
  if (!report.ok) ++totals.divergences;
  if (report.degenerate) ++totals.degenerate;
  if (!report.fixpoint_converged) ++totals.non_converged;
  totals.operations += report.operations;
  totals.transports += report.transports;
  totals.max_fixpoint_rounds =
      std::max(totals.max_fixpoint_rounds, report.fixpoint_rounds);
}

std::string write_repro(const Scenario& scenario, const std::string& dir) {
  std::filesystem::create_directories(dir);
  std::string path = dir;
  path += "/repro-";
  path += scenario.name;
  path += ".assay";
  std::ofstream out(path);
  out << write_scenario(scenario);
  return path;
}

void report_divergence(const Scenario& scenario, const OracleReport& report,
                       const OracleOptions& oracle_options, bool shrink,
                       const std::string& repro_dir) {
  std::cerr << "DIVERGENCE in " << scenario.name << ":\n";
  for (const auto& failure : report.failures) {
    std::cerr << "  " << failure << "\n";
  }
  Scenario repro = scenario;
  if (shrink) {
    ShrinkStats stats;
    repro = shrink_scenario(
        scenario,
        [&](const Scenario& candidate) {
          return !run_differential_oracle(candidate, oracle_options).ok;
        },
        &stats);
    std::cerr << "  shrunk to " << repro.graph.operation_count()
              << " op(s) in " << stats.attempts << " attempts ("
              << stats.accepted << " accepted, " << stats.rounds
              << " rounds)\n";
  }
  std::cerr << "  repro written to " << write_repro(repro, repro_dir)
            << "\n";
}

/// Self-test: inject each known fault, require the oracle to flag it, and
/// require the shrinker to reduce the repro to at most 8 operations.
int run_self_test(std::uint64_t seed, const GeneratorOptions& gen_options,
                  OracleOptions oracle_options) {
  struct Case {
    const char* name;
    FaultInjection inject;
  };
  const Case cases[] = {
      {"schedule-off-by-one", FaultInjection::kScheduleOffByOne},
      {"route-delay-off-by-one", FaultInjection::kRouteDelayOffByOne},
  };
  constexpr std::uint64_t kMaxProbes = 64;
  constexpr std::size_t kMaxReproOps = 8;

  bool ok = true;
  for (const Case& c : cases) {
    oracle_options.inject = c.inject;
    bool found = false;
    for (std::uint64_t index = 0; index < kMaxProbes && !found; ++index) {
      const Scenario scenario =
          generate_scenario(seed, index, gen_options);
      const OracleReport report =
          run_differential_oracle(scenario, oracle_options);
      if (report.ok) continue;
      found = true;

      ShrinkStats stats;
      const Scenario repro = shrink_scenario(
          scenario,
          [&](const Scenario& candidate) {
            return !run_differential_oracle(candidate, oracle_options).ok;
          },
          &stats);
      const std::size_t ops = repro.graph.operation_count();

      // The minimal repro must still reproduce after a serialization
      // round trip: that is the property that makes corpus files
      // faithful regression tests.
      const Scenario replayed = parse_scenario(write_scenario(repro));
      const bool replays =
          !run_differential_oracle(replayed, oracle_options).ok;

      std::cout << "self-test " << c.name << ": detected at scenario "
                << scenario.name << ", shrunk " << scenario.graph.operation_count()
                << " -> " << ops << " op(s) (" << stats.attempts
                << " attempts), round-trip "
                << (replays ? "reproduces" : "LOST") << "\n";
      if (ops > kMaxReproOps) {
        std::cerr << "self-test " << c.name << ": FAILED, minimal repro "
                  << "has " << ops << " ops (> " << kMaxReproOps << ")\n";
        ok = false;
      }
      if (!replays) ok = false;
    }
    if (!found) {
      std::cerr << "self-test " << c.name << ": FAILED, no divergence in "
                << kMaxProbes << " scenarios\n";
      ok = false;
    }
  }
  std::cout << (ok ? "self-test passed" : "self-test FAILED") << "\n";
  return ok ? 0 : 1;
}

void write_json(const std::string& path, std::uint64_t seed,
                std::uint64_t count, const Totals& totals,
                double elapsed_s) {
  std::ofstream out(path);
  out << "{\n  \"fuzz\": {\n"
      << "    \"seed\": " << seed << ",\n"
      << "    \"requested\": " << count << ",\n"
      << "    \"executed\": " << totals.executed << ",\n"
      << "    \"corpus_replayed\": " << totals.corpus_replayed << ",\n"
      << "    \"divergences\": " << totals.divergences << ",\n"
      << "    \"degenerate\": " << totals.degenerate << ",\n"
      << "    \"non_converged\": " << totals.non_converged << ",\n"
      << "    \"operations\": " << totals.operations << ",\n"
      << "    \"transports\": " << totals.transports << ",\n"
      << "    \"max_fixpoint_rounds\": " << totals.max_fixpoint_rounds
      << ",\n"
      << "    \"elapsed_s\": " << elapsed_s << ",\n"
      << "    \"ok\": " << (totals.divergences == 0 ? "true" : "false")
      << "\n  }\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  std::uint64_t count = 200;
  double time_budget_s = 0.0;
  int threads = 0;
  bool shrink = false;
  bool self_test = false;
  std::string repro_dir = "repros";
  std::string corpus_dir;
  std::string json_out;
  std::string trace_out;
  GeneratorOptions gen_options;
  OracleOptions oracle_options;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(arg, "--count") == 0 && i + 1 < argc) {
      count = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(arg, "--time-budget") == 0 && i + 1 < argc) {
      time_budget_s = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(arg, "--max-ops") == 0 && i + 1 < argc) {
      gen_options.max_operations =
          static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(arg, "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(arg, "--shrink") == 0) {
      shrink = true;
    } else if (std::strcmp(arg, "--repro-dir") == 0 && i + 1 < argc) {
      repro_dir = argv[++i];
    } else if (std::strcmp(arg, "--corpus") == 0 && i + 1 < argc) {
      corpus_dir = argv[++i];
    } else if (std::strcmp(arg, "--inject") == 0 && i + 1 < argc) {
      const char* kind = argv[++i];
      if (std::strcmp(kind, "schedule") == 0) {
        oracle_options.inject = FaultInjection::kScheduleOffByOne;
      } else if (std::strcmp(kind, "route") == 0) {
        oracle_options.inject = FaultInjection::kRouteDelayOffByOne;
      } else {
        print_usage();
        return 2;
      }
    } else if (std::strcmp(arg, "--json-out") == 0 && i + 1 < argc) {
      json_out = argv[++i];
    } else if (std::strcmp(arg, "--self-test") == 0) {
      self_test = true;
    } else if (std::strcmp(arg, "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else {
      print_usage();
      return 2;
    }
  }
  if (gen_options.max_operations < gen_options.min_operations ||
      threads < 0) {
    print_usage();
    return 2;
  }
  if (!trace_out.empty()) {
    trace::TraceRecorder::instance().set_enabled(true);
    trace::TraceRecorder::instance().set_current_thread_name(
        "fuzz-synth-main");
  }

  fbmb::ThreadPool* pool = nullptr;
  fbmb::ThreadPool real_pool(threads > 0 ? static_cast<std::size_t>(threads)
                                         : 1);
  if (threads > 0) {
    pool = &real_pool;
    oracle_options.route_executor =
        [pool](std::vector<std::function<void()>>& tasks) {
          fbmb::parallel_invoke(*pool, tasks);
        };
  }

  if (self_test) {
    return run_self_test(seed, gen_options, oracle_options);
  }

  const auto start = std::chrono::steady_clock::now();
  const auto elapsed = [&start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  Totals totals;

  // Corpus replay first: committed repros are the cheapest regressions to
  // recheck and must never diverge again.
  if (!corpus_dir.empty()) {
    for (const auto& [file, scenario] : fbmb::load_corpus(corpus_dir)) {
      const OracleReport report =
          run_differential_oracle(scenario, oracle_options);
      tally(totals, report);
      ++totals.corpus_replayed;
      if (!report.ok) {
        report_divergence(scenario, report, oracle_options, shrink,
                          repro_dir);
      }
    }
    std::cout << "corpus: " << totals.corpus_replayed << " scenario(s) from "
              << corpus_dir << ", " << totals.divergences
              << " divergence(s)\n";
  }

  std::uint64_t generated = 0;
  for (std::uint64_t index = 0; index < count; ++index) {
    if (time_budget_s > 0.0 && elapsed() >= time_budget_s) break;
    const Scenario scenario = generate_scenario(seed, index, gen_options);
    const OracleReport report =
        run_differential_oracle(scenario, oracle_options);
    tally(totals, report);
    ++generated;
    if (!report.ok) {
      report_divergence(scenario, report, oracle_options, shrink, repro_dir);
    }
  }

  const double wall_s = elapsed();
  std::cout << "fuzz: seed " << seed << ", " << generated
            << " generated scenario(s) in " << wall_s << " s, "
            << totals.operations << " ops / " << totals.transports
            << " transports total, " << totals.degenerate
            << " degenerate, " << totals.non_converged
            << " non-converged, max fixpoint rounds "
            << totals.max_fixpoint_rounds << ", " << totals.divergences
            << " divergence(s)\n";

  if (!json_out.empty()) {
    write_json(json_out, seed, count, totals, wall_s);
  }
  if (!trace_out.empty()) {
    std::string error;
    if (!trace::write_chrome_trace_file(trace_out, &error)) {
      std::cerr << "trace-out: " << error << "\n";
    }
  }
  return totals.divergences == 0 ? 0 : 1;
}
