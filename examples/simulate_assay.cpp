// Execute a synthesized chip in the discrete-event simulator.
//
// Runs the full DCSA flow on the paper's worked example, then replays the
// result through the chip simulator — an independent executable-semantics
// engine — printing the event trace and cross-checking the measured
// statistics against the flow's reported metrics.
//
//   build/examples/simulate_assay

#include <iostream>

#include "bench_suite/benchmarks.hpp"
#include "sim/chip_simulator.hpp"
#include "util/strings.hpp"

int main() {
  using namespace fbmb;

  const Benchmark bench = make_paper_example();
  const Allocation alloc(bench.allocation);
  const SynthesisResult result =
      synthesize_dcsa(bench.graph, alloc, bench.wash);

  const SimResult sim =
      simulate_chip(bench.graph, alloc, bench.wash, result);

  std::cout << "=== simulating the Fig. 2(a) bioassay ===\n\n";
  std::cout << "event trace:\n";
  for (const auto& event : sim.trace) {
    std::cout << "  t=" << pad_left(format_double(event.time, 1), 6) << "  "
              << event.description << '\n';
  }

  std::cout << "\nsimulation " << (sim.ok ? "PASSED" : "FAILED") << '\n';
  for (const auto& v : sim.violations) std::cout << "  violation: " << v << '\n';

  std::cout << "\ncross-check (simulator measured vs flow reported):\n";
  std::cout << "  completion:     " << format_double(sim.stats.completion_time, 1)
            << " vs " << format_double(result.completion_time, 1) << " s\n";
  std::cout << "  channel cache:  "
            << format_double(sim.stats.channel_cache_time, 1) << " vs "
            << format_double(result.total_cache_time, 1) << " s\n";
  std::cout << "  chamber washes: "
            << format_double(sim.stats.component_wash_time, 1) << " vs "
            << format_double(result.schedule.total_component_wash_time(), 1)
            << " s\n";
  std::cout << "  plugs moved:    " << sim.stats.plugs_moved << ", washes: "
            << sim.stats.washes_performed << '\n';
  return sim.ok ? 0 : 1;
}
