// The paper's worked example (Fig. 2a / Fig. 3): the 10-operation bioassay
// on (3 mixers, 1 heater, 1 detector), synthesized with both the proposed
// DCSA flow and the BA baseline, reproducing the Section II-C discussion:
// the wash-aware binding finishes sooner and uses the chip better.
//
//   build/examples/paper_example

#include <iostream>

#include "bench_suite/benchmarks.hpp"
#include "core/comparison.hpp"
#include "graph/graph_algorithms.hpp"
#include "util/strings.hpp"

int main() {
  using namespace fbmb;
  const Benchmark bench = make_paper_example();
  const Allocation alloc(bench.allocation);

  std::cout << "=== Fig. 2(a) bioassay ===\n";
  std::cout << "operations: " << bench.graph.operation_count()
            << ", dependencies: " << bench.graph.dependency_count()
            << ", allocation " << bench.allocation.to_string() << "\n";

  // Section IV-A's priority computation: with t_c = 2 the priority value
  // of o1 (longest path to the sink) is 21.
  const auto priorities = longest_path_to_sink(bench.graph, 2.0);
  std::cout << "priority(o1) = " << priorities[0] << " (paper: 21)\n\n";

  const ComparisonRow row =
      compare_flows(bench.name, bench.graph, alloc, bench.wash);

  std::cout << "--- proposed DCSA flow ---\n"
            << row.ours.summary() << "\n"
            << row.ours.schedule.to_string(bench.graph) << '\n';
  std::cout << "--- baseline BA flow ---\n"
            << row.baseline.summary() << "\n"
            << row.baseline.schedule.to_string(bench.graph) << '\n';

  std::cout << "execution-time improvement: "
            << format_double(row.execution_improvement_pct(), 1) << " %\n";
  std::cout << "utilization improvement:    "
            << format_double(row.utilization_improvement_pct(), 1) << " %\n";
  std::cout << "DOT graph (render with graphviz):\n"
            << bench.graph.to_dot();
  return 0;
}
