// Batch synthesis across the whole paper suite on the concurrent runtime.
//
// Runs all seven Table-I benchmarks (PCR, IVD, CPA, Synthetic1-4) through
// the DCSA flow concurrently on SynthesisEngine, then runs the identical
// batch a second time to demonstrate the content-addressed result cache
// (every second-pass job is a hit). Prints a per-benchmark table, the
// engine telemetry summary, and optionally the full telemetry JSON.
//
//   build/examples/batch_synth [options]
//
//   --threads N        worker threads (default: hardware concurrency)
//   --passes N         how many times to run the batch (default: 2)
//   --cache-file PATH  load the result cache from PATH before the first
//                      pass and save it back after the last one
//   --json             print the engine's telemetry JSON for the last pass
//   --verify-serial    recompute every benchmark with the serial flow and
//                      fail unless the batch results are bit-identical
//   --seed S           SA placer seed for all jobs (default: options')
//   --trace-out PATH   enable tracing; write Chrome-trace JSON on exit

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_suite/benchmarks.hpp"
#include "report/table.hpp"
#include "runtime/synthesis_engine.hpp"
#include "trace/chrome_export.hpp"
#include "trace/trace.hpp"
#include "util/strings.hpp"

namespace {

void print_usage() {
  std::cerr << "usage: batch_synth [--threads N] [--passes N]\n"
               "                   [--cache-file PATH] [--json]\n"
               "                   [--verify-serial] [--seed S]\n"
               "                   [--trace-out PATH]\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fbmb;

  SynthesisEngineOptions engine_options;
  int passes = 2;
  std::string cache_file;
  std::string trace_out;
  bool print_json = false;
  bool verify_serial = false;
  SynthesisOptions options;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--threads") == 0 && i + 1 < argc) {
      engine_options.threads =
          static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(arg, "--passes") == 0 && i + 1 < argc) {
      passes = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(arg, "--cache-file") == 0 && i + 1 < argc) {
      cache_file = argv[++i];
    } else if (std::strcmp(arg, "--json") == 0) {
      print_json = true;
    } else if (std::strcmp(arg, "--verify-serial") == 0) {
      verify_serial = true;
    } else if (std::strcmp(arg, "--seed") == 0 && i + 1 < argc) {
      options.placer.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(arg, "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else {
      print_usage();
      return 2;
    }
  }
  if (passes < 1) {
    print_usage();
    return 2;
  }
  if (!trace_out.empty()) {
    trace::TraceRecorder::instance().set_enabled(true);
    trace::TraceRecorder::instance().set_current_thread_name(
        "batch-synth-main");
  }

  const auto benches = paper_benchmarks();
  std::vector<SynthesisJob> jobs;
  jobs.reserve(benches.size());
  for (const auto& bench : benches) {
    SynthesisJob job;
    job.name = bench.name;
    job.graph = bench.graph;
    job.allocation = Allocation(bench.allocation);
    job.wash = bench.wash;
    job.options = options;
    job.flow = FlowPreset::kDcsa;
    jobs.push_back(std::move(job));
  }

  SynthesisEngine engine(engine_options);
  if (!cache_file.empty()) {
    const std::size_t loaded = engine.cache().load_json(cache_file);
    if (loaded > 0) {
      std::cout << "Loaded " << loaded << " cached results from "
                << cache_file << "\n";
    }
  }

  std::vector<JobOutcome> outcomes;
  for (int pass = 1; pass <= passes; ++pass) {
    outcomes = engine.run_batch(jobs);

    TextTable table({"Benchmark", "Completion", "Utilization", "Length",
                     "Wall (s)", "Cache"},
                    {Align::kLeft, Align::kRight, Align::kRight,
                     Align::kRight, Align::kRight, Align::kLeft});
    for (const JobOutcome& out : outcomes) {
      table.add_row({out.name, format_double(out.result.completion_time, 1),
                     format_double(out.result.utilization * 100.0, 1),
                     format_double(out.result.channel_length_mm, 0),
                     format_double(out.wall_seconds, 4),
                     out.cache_hit ? "hit" : "miss"});
    }
    std::cout << "\nPass " << pass << "/" << passes << " ("
              << engine.pool().thread_count() << " threads)\n"
              << table;
  }

  if (verify_serial) {
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const SynthesisResult serial = synthesize_dcsa(
          jobs[i].graph, jobs[i].allocation, jobs[i].wash, jobs[i].options);
      const SynthesisResult& batch = outcomes[i].result;
      if (serial.completion_time != batch.completion_time ||
          serial.utilization != batch.utilization ||
          serial.channel_length_mm != batch.channel_length_mm) {
        std::cerr << "MISMATCH on " << jobs[i].name << ": serial "
                  << serial.completion_time << "/" << serial.utilization
                  << "/" << serial.channel_length_mm << " vs batch "
                  << batch.completion_time << "/" << batch.utilization
                  << "/" << batch.channel_length_mm << "\n";
        ++mismatches;
      }
    }
    if (mismatches > 0) return 1;
    std::cout << "\nverify-serial: all " << jobs.size()
              << " benchmarks bit-identical to the serial flow\n";
  }

  const Telemetry::Snapshot snap = engine.telemetry().snapshot();
  std::cout << "\nTelemetry: " << snap.jobs_completed << " jobs, "
            << snap.cache_hits << " cache hits, " << snap.cache_misses
            << " misses\n  stage walls (s): schedule "
            << format_double(snap.stage_seconds.schedule, 3) << ", refine "
            << format_double(snap.stage_seconds.refine, 3) << ", place "
            << format_double(snap.stage_seconds.place, 3) << ", grid "
            << format_double(snap.stage_seconds.grid_build, 3) << ", route "
            << format_double(snap.stage_seconds.route, 3) << ", retime "
            << format_double(snap.stage_seconds.retime, 3)
            << "\n  max queue depth: " << snap.max_queue_depth << "\n";

  if (print_json) {
    std::cout << "\n" << engine.telemetry_json(outcomes) << "\n";
  }

  if (!cache_file.empty()) {
    if (engine.cache().save_json(cache_file)) {
      std::cout << "Saved " << engine.cache().size() << " results to "
                << cache_file << "\n";
    } else {
      std::cerr << "Failed to save cache to " << cache_file << "\n";
      return 1;
    }
  }
  if (!trace_out.empty()) {
    std::string error;
    if (trace::write_chrome_trace_file(trace_out, &error)) {
      std::cout << "Trace written to " << trace_out << "\n";
    } else {
      std::cerr << "trace-out: " << error << "\n";
      return 1;
    }
  }
  return 0;
}
