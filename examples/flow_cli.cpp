// Command-line front end for the synthesis flows.
//
//   flow_cli --benchmark <PCR|IVD|CPA|Synthetic1..4|PaperExample>
//   flow_cli --assay <file.assay> [--alloc M,H,F,D]
//   options: --flow ours|ba|both (default both)
//            --seed <n>          SA placement seed (default 1)
//            --svg <out.svg>     write the DCSA layout rendering
//            --dot <out.dot>     write the sequencing graph
//            --schedule          print the full schedule timeline
//
// Example:
//   build/examples/flow_cli --benchmark CPA --svg cpa.svg --schedule

#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "bench_suite/benchmarks.hpp"
#include "core/comparison.hpp"
#include "graph/assay_parser.hpp"
#include "report/svg.hpp"
#include "util/strings.hpp"

namespace {

using namespace fbmb;

std::optional<Benchmark> benchmark_by_name(const std::string& name) {
  if (name == "PCR") return make_pcr();
  if (name == "IVD") return make_ivd();
  if (name == "CPA") return make_cpa();
  if (name == "PaperExample") return make_paper_example();
  if (name.starts_with("Synthetic") && name.size() == 10) {
    const int index = name[9] - '0';
    if (index >= 1 && index <= 4) return make_synthetic(index);
  }
  return std::nullopt;
}

int usage() {
  std::cerr << "usage: flow_cli --benchmark <name> | --assay <file> "
               "[--alloc M,H,F,D]\n"
               "       [--flow ours|ba|both] [--seed n] [--svg out.svg] "
               "[--dot out.dot] [--schedule]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<Benchmark> bench;
  std::string flow = "both";
  std::string svg_path, dot_path, assay_path, alloc_arg;
  std::uint64_t seed = 1;
  bool print_schedule = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--benchmark") {
      const char* v = next();
      if (!v) return usage();
      bench = benchmark_by_name(v);
      if (!bench) {
        std::cerr << "unknown benchmark '" << v << "'\n";
        return 2;
      }
    } else if (arg == "--assay") {
      const char* v = next();
      if (!v) return usage();
      assay_path = v;
    } else if (arg == "--alloc") {
      const char* v = next();
      if (!v) return usage();
      alloc_arg = v;
    } else if (arg == "--flow") {
      const char* v = next();
      if (!v) return usage();
      flow = v;
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return usage();
      seed = std::stoull(v);
    } else if (arg == "--svg") {
      const char* v = next();
      if (!v) return usage();
      svg_path = v;
    } else if (arg == "--dot") {
      const char* v = next();
      if (!v) return usage();
      dot_path = v;
    } else if (arg == "--schedule") {
      print_schedule = true;
    } else {
      return usage();
    }
  }

  if (!assay_path.empty()) {
    std::ifstream in(assay_path);
    if (!in) {
      std::cerr << "cannot open '" << assay_path << "'\n";
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
      ParsedAssay parsed = parse_assay(text.str());
      Benchmark b;
      b.name = assay_path;
      b.graph = std::move(parsed.graph);
      b.wash = std::move(parsed.wash);
      if (!alloc_arg.empty()) {
        const auto parts = split(alloc_arg, ',');
        if (parts.size() != 4) return usage();
        b.allocation = {std::stoi(parts[0]), std::stoi(parts[1]),
                        std::stoi(parts[2]), std::stoi(parts[3])};
      } else if (parsed.has_allocation) {
        b.allocation = parsed.allocation;
      } else {
        std::cerr << "no allocation: add 'allocate' to the file or pass "
                     "--alloc\n";
        return 2;
      }
      bench = std::move(b);
    } catch (const AssayParseError& e) {
      std::cerr << assay_path << ": " << e.what() << '\n';
      return 1;
    }
  }
  if (!bench) return usage();

  const Allocation alloc(bench->allocation);
  SynthesisOptions options;
  options.placer.seed = seed;

  if (!dot_path.empty()) {
    std::ofstream(dot_path) << bench->graph.to_dot();
    std::cout << "wrote " << dot_path << '\n';
  }

  try {
    if (flow == "both") {
      const ComparisonRow row = compare_flows(bench->name, bench->graph,
                                              alloc, bench->wash, options);
      std::cout << bench->name << " (" << bench->graph.operation_count()
                << " ops, " << bench->allocation.to_string() << ")\n"
                << "  ours: " << row.ours.summary() << '\n'
                << "  BA:   " << row.baseline.summary() << '\n'
                << "  improvements: exec "
                << format_double(row.execution_improvement_pct(), 1)
                << " %, utilization "
                << format_double(row.utilization_improvement_pct(), 1)
                << " %, channel length "
                << format_double(row.channel_length_improvement_pct(), 1)
                << " %\n";
      if (print_schedule) {
        std::cout << "\nDCSA schedule:\n"
                  << row.ours.schedule.to_string(bench->graph);
      }
      if (!svg_path.empty()) {
        std::ofstream(svg_path) << render_layout_svg(
            alloc, row.ours.placement, row.ours.chip, row.ours.routing);
        std::cout << "wrote " << svg_path << '\n';
      }
    } else {
      const SynthesisResult result =
          flow == "ba" ? synthesize_baseline(bench->graph, alloc,
                                             bench->wash, options)
                       : synthesize_dcsa(bench->graph, alloc, bench->wash,
                                         options);
      std::cout << bench->name << ": " << result.summary() << '\n';
      if (print_schedule) {
        std::cout << result.schedule.to_string(bench->graph);
      }
      if (!svg_path.empty()) {
        std::ofstream(svg_path) << render_layout_svg(
            alloc, result.placement, result.chip, result.routing);
        std::cout << "wrote " << svg_path << '\n';
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "synthesis failed: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
