// PCR end-to-end walk-through: the polymerase-chain-reaction mixing tree
// from Table I, with a stage-by-stage dump of what the synthesis flow
// decides — binding, schedule timeline, floorplan, channel routes, and the
// channel-storage (caching) decisions that make DCSA work.
//
//   build/examples/pcr_flow

#include <iostream>

#include "bench_suite/benchmarks.hpp"
#include "core/synthesis.hpp"
#include "schedule/metrics.hpp"
#include "util/strings.hpp"

int main() {
  using namespace fbmb;
  const Benchmark bench = make_pcr();
  const Allocation alloc(bench.allocation);

  std::cout << "=== PCR sample preparation (7 mixes on 3 mixers) ===\n\n";
  const SynthesisResult result =
      synthesize_dcsa(bench.graph, alloc, bench.wash);

  std::cout << "Stage 1 - binding & scheduling (Algorithm 1):\n"
            << result.schedule.to_string(bench.graph) << '\n';

  const ScheduleStats stats = compute_schedule_stats(result.schedule, alloc);
  std::cout << "  in-place hand-offs: " << stats.in_place_count
            << " of " << bench.graph.dependency_count() << " dependencies\n"
            << "  channel evictions:  " << stats.eviction_count << '\n'
            << "  component washes:   " << result.schedule.component_washes.size()
            << " (total " << format_double(stats.component_wash_time, 1)
            << " s)\n\n";

  std::vector<Point> channel_cells;
  for (const auto& path : result.routing.paths) {
    channel_cells.insert(channel_cells.end(), path.cells.begin(),
                         path.cells.end());
  }
  std::cout << "Stage 2 - simulated-annealing placement (Eq. 3/4), routed\n"
               "channels overlaid as '+':\n"
            << result.placement.to_ascii(alloc, result.chip, channel_cells)
            << '\n';
  for (const auto& comp : alloc.components()) {
    const Rect fp = result.placement.footprint(comp.id, alloc);
    std::cout << "  " << comp.name << " at " << to_string(fp) << '\n';
  }

  std::cout << "\nStage 3 - conflict-aware routing (Eq. 5):\n";
  for (const auto& path : result.routing.paths) {
    const auto& t = result.schedule
                        .transports[static_cast<std::size_t>(path.transport_id)];
    std::cout << "  " << bench.graph.operation(t.producer).name << " -> "
              << bench.graph.operation(t.consumer).name << ": "
              << path.length_cells() << " cells";
    if (path.wash_duration > 0.0) {
      std::cout << ", pre-wash " << path.wash_duration << " s";
    }
    if (path.cache_until > path.transport_end) {
      std::cout << ", channel-cached "
                << format_double(path.cache_until - path.transport_end, 1)
                << " s";
    }
    std::cout << '\n';
  }

  std::cout << "\nResult: " << result.summary() << '\n';
  return 0;
}
